package exec

// Vectorized columnar batch kernels and the engine dispatch layer. Every
// kernel here is output-byte-identical to its row twin in ops.go/parallel.go
// — same rows, same order, same Value payloads — because:
//
//   - Selection runs over typed column vectors (storage.ColView) into a
//     selection Bitmap whose bit order is row order; the gather pass walks
//     set bits ascending, reproducing the row filter's emission order, and
//     copies output values from the ORIGINAL tuples, never re-encoding them.
//   - The hash join keys on cached hash columns (ColView.KeyHashes — the
//     same algebra.Tuple.HashCols the row join computes inline), keeps
//     build-bucket insertion order and probe order, confirms collisions with
//     the same EqualOn, and evaluates residual conjuncts two-sided with the
//     same Value.Compare — so every emit decision and its order match the
//     row join exactly. The projection to the operator's target schema is
//     fused into the emit (no wide l++r intermediate row is ever built).
//   - Aggregation/dedup/minus consume cached hash columns partition-wise
//     with the same state machines as the row engine.
//
// The exec* dispatch wrappers at the bottom route each plan operator to the
// batch or row kernel from Par.Batch; all three plan interpreters (run.go,
// maintain.go, schedule.go) call only the wrappers, so the engines stay
// interchangeable everywhere.

import (
	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/dag"
	"repro/internal/storage"
)

// ---------------------------------------------------------------------------
// Selection: predicate → selection bitmap over column vectors.

// batchSelBitmap evaluates a CNF predicate into a selection bitmap. The
// first conjunct fills the bitmap with a dense typed loop; later conjuncts
// compose by clearing set bits (selection-vector composition). Disjunctive
// clauses evaluate in one vectorized pass each: every alternative runs its
// dense fill loop into a shared scratch bitmap — fill mode only ever sets
// bits, so alternatives OR together for free — and the clause verdict is
// ANDed into the main bitmap word-wise. No clause ever falls back to
// per-surviving-row predicate evaluation. Large inputs evaluate
// morsel-parallel over word-aligned row ranges, so no two workers touch a
// bitmap word (the scratch bitmap is word-disjoint between workers too).
func batchSelBitmap(in *storage.Relation, pred algebra.Pred, par storage.Par) *Bitmap {
	bp := pred.Bind(in.Schema())
	return selBitmapCmps(in, bp.Cmps(), bp.Clauses(), par)
}

// selBitmapCmps is batchSelBitmap over pre-compiled conjuncts/clauses whose
// indexes refer to the relation's own layout — the chained pipeline remaps a
// batch-schema compile through its projection and evaluates here, sharing
// every dense kernel.
func selBitmapCmps(in *storage.Relation, cmps []algebra.BoundCmp, clauses [][]algebra.BoundCmp, par storage.Par) *Bitmap {
	n := in.Len()
	bm := NewBitmap(n)
	if len(cmps) == 0 && len(clauses) == 0 {
		bm.SetAll()
		return bm
	}
	cv := in.ColView()
	rows := in.Rows()
	var scratch *Bitmap
	if len(clauses) > 0 {
		scratch = NewBitmap(n)
	}
	eval := func(lo, hi int) {
		for ci := range cmps {
			applyCmpRange(bm, ci == 0, cmps[ci], cv, rows, lo, hi)
		}
		filled := len(cmps) > 0
		for _, cl := range clauses {
			scratch.ZeroWords(lo, hi)
			for _, c := range cl {
				// Fill mode for every alternative: set-only writes compose
				// the disjunction in the scratch bitmap.
				applyCmpRange(scratch, true, c, cv, rows, lo, hi)
			}
			if filled {
				bm.AndWords(scratch, lo, hi)
			} else {
				bm.CopyWords(scratch, lo, hi)
				filled = true
			}
		}
	}
	par = par.Norm()
	if !par.Enabled() || n < storage.ParMinRows {
		eval(0, n)
		return bm
	}
	ranges := wordAlignedRanges(n, par.Partitions)
	forRanges(ranges, par.Workers, func(_, lo, hi int) { eval(lo, hi) })
	return bm
}

// wordAlignedRanges splits [0, n) into up to parts contiguous ranges whose
// boundaries (except the final n) are multiples of 64, so concurrent workers
// never share a bitmap word.
func wordAlignedRanges(n, parts int) [][2]int {
	words := (n + 63) >> 6
	wr := storage.MorselRanges(words, parts)
	out := make([][2]int, len(wr))
	for i, r := range wr {
		lo, hi := r[0]<<6, r[1]<<6
		if hi > n {
			hi = n
		}
		out[i] = [2]int{lo, hi}
	}
	return out
}

// applyCmpRange applies one compiled conjunct over rows [lo, hi): dense
// typed loops when both sides resolve to one payload class, a row-at-a-time
// fallback (same Value.Compare semantics) otherwise.
func applyCmpRange(bm *Bitmap, first bool, c algebra.BoundCmp, cv *storage.ColView, rows []algebra.Tuple, lo, hi int) {
	if c.LArith != nil || c.RArith != nil {
		applyArithCmpRange(bm, first, c, cv, rows, lo, hi)
		return
	}
	op := c.Op
	// Normalize literal-vs-column to column-vs-literal by swapping the
	// comparison direction.
	if c.LIdx < 0 && c.RIdx >= 0 {
		c.LIdx, c.RIdx = c.RIdx, -1
		c.LVal, c.RVal = c.RVal, c.LVal
		op = swapOp(op)
	}
	switch {
	case c.LIdx < 0 && c.RIdx < 0:
		applyConst(bm, first, lo, hi, opOK(op, c.LVal.Compare(c.RVal)))
	case c.RIdx < 0:
		applyColConst(bm, first, op, cv.Col(c.LIdx), c.RVal, rows, c.LIdx, lo, hi)
	default:
		applyColCol(bm, first, op, cv.Col(c.LIdx), cv.Col(c.RIdx), rows, c, lo, hi)
	}
}

// swapOp mirrors a comparison operator across swapped operands.
func swapOp(op algebra.CmpOp) algebra.CmpOp {
	switch op {
	case algebra.LT:
		return algebra.GT
	case algebra.LE:
		return algebra.GE
	case algebra.GT:
		return algebra.LT
	case algebra.GE:
		return algebra.LE
	}
	return op
}

// opOK translates a three-way comparison into the operator's verdict.
func opOK(op algebra.CmpOp, cmp int) bool {
	switch op {
	case algebra.EQ:
		return cmp == 0
	case algebra.NE:
		return cmp != 0
	case algebra.LT:
		return cmp < 0
	case algebra.LE:
		return cmp <= 0
	case algebra.GT:
		return cmp > 0
	case algebra.GE:
		return cmp >= 0
	}
	return false
}

// applyConst folds a constant conjunct verdict into the bitmap.
func applyConst(bm *Bitmap, first bool, lo, hi int, ok bool) {
	switch {
	case ok && first:
		bm.SetRange(lo, hi)
	case !ok && !first:
		bm.ClearRange(lo, hi)
	}
}

// applyColConst applies column-op-literal. The common same-class cases run
// dense typed loops; numeric cross-class goes value-at-a-time on the vector;
// class-ordered cases (numeric vs string) collapse to a constant verdict.
func applyColConst(bm *Bitmap, first bool, op algebra.CmpOp, v *storage.ColVec, lit algebra.Value, rows []algebra.Tuple, col int, lo, hi int) {
	litRep := litRepOf(lit)
	switch {
	case v.Rep == storage.RepInt && litRep == storage.RepInt:
		denseConstOrd(bm, first, v.I, lit.I, op, lo, hi)
	case v.Rep == storage.RepFloat && litRep == storage.RepFloat:
		denseConstFloat(bm, first, v.F, lit.F, op, lo, hi)
	case v.Rep == storage.RepStr && litRep == storage.RepStr:
		denseConstOrd(bm, first, v.S, lit.S, op, lo, hi)
	case v.Rep == storage.RepInt && litRep == storage.RepFloat:
		// Exact int-vs-float comparison through Value.Compare, reading the
		// column vector (no tuple loads).
		xs := v.I
		test := func(i int) bool { return opOK(op, algebra.NewInt(xs[i]).Compare(lit)) }
		applyTest(bm, first, lo, hi, test)
	case v.Rep == storage.RepFloat && litRep == storage.RepInt:
		xs := v.F
		test := func(i int) bool { return opOK(op, algebra.NewFloat(xs[i]).Compare(lit)) }
		applyTest(bm, first, lo, hi, test)
	case v.Rep == storage.RepInt && litRep == storage.RepStr,
		v.Rep == storage.RepFloat && litRep == storage.RepStr:
		// Every numeric orders before every string: cmp is -1 for all rows.
		applyConst(bm, first, lo, hi, opOK(op, -1))
	case v.Rep == storage.RepStr && litRep != storage.RepStr:
		applyConst(bm, first, lo, hi, opOK(op, 1))
	default:
		// Mixed-class column: evaluate through the rows.
		test := func(i int) bool { return opOK(op, rows[i][col].Compare(lit)) }
		applyTest(bm, first, lo, hi, test)
	}
}

// applyColCol applies column-op-column; same-class pairs run dense loops.
func applyColCol(bm *Bitmap, first bool, op algebra.CmpOp, l, r *storage.ColVec, rows []algebra.Tuple, c algebra.BoundCmp, lo, hi int) {
	switch {
	case l.Rep == storage.RepInt && r.Rep == storage.RepInt:
		denseColsOrd(bm, first, l.I, r.I, op, lo, hi)
	case l.Rep == storage.RepFloat && r.Rep == storage.RepFloat:
		xs, ys := l.F, r.F
		test := func(i int) bool { return opOK(op, cmpFloat(xs[i], ys[i])) }
		applyTest(bm, first, lo, hi, test)
	case l.Rep == storage.RepStr && r.Rep == storage.RepStr:
		denseColsOrd(bm, first, l.S, r.S, op, lo, hi)
	default:
		li, ri := c.LIdx, c.RIdx
		test := func(i int) bool { return opOK(op, rows[i][li].Compare(rows[i][ri])) }
		applyTest(bm, first, lo, hi, test)
	}
}

// applyTest routes a per-row test through the fill/compose duality.
func applyTest(bm *Bitmap, first bool, lo, hi int, test func(i int) bool) {
	if first {
		for i := lo; i < hi; i++ {
			if test(i) {
				bm.Set(i)
			}
		}
		return
	}
	bm.FilterRange(lo, hi, test)
}

// applyArithCmpRange applies a conjunct with at least one arithmetic side
// over [lo, hi): each arithmetic side evaluates into a dense float64 lane
// (typed vectors feed the lane with no tuple loads — the columnar compile of
// arithmetic predicates), and the comparison reproduces the row engine's
// Value.Compare. An arithmetic result is a Float, so float-vs-float pairs run
// the dense NaN-class compare and mixed pairs go through Value.Compare with
// the exact row value (kind preserved).
func applyArithCmpRange(bm *Bitmap, first bool, c algebra.BoundCmp, cv *storage.ColView, rows []algebra.Tuple, lo, hi int) {
	op := c.Op
	if c.LArith == nil {
		// Normalize arithmetic to the left, swapping the comparison
		// direction (Value.Compare is antisymmetric).
		c.LArith, c.RArith = c.RArith, nil
		c.LIdx, c.RIdx = c.RIdx, c.LIdx
		c.LVal, c.RVal = c.RVal, c.LVal
		op = swapOp(op)
	}
	xs := make([]float64, hi-lo)
	evalArithLane(c.LArith, cv, rows, lo, hi, xs)
	switch {
	case c.RArith != nil:
		ys := make([]float64, hi-lo)
		evalArithLane(c.RArith, cv, rows, lo, hi, ys)
		applyTest(bm, first, lo, hi, func(i int) bool { return opOK(op, cmpFloat(xs[i-lo], ys[i-lo])) })
	case c.RIdx < 0:
		lit := c.RVal
		if litRepOf(lit) == storage.RepFloat {
			applyTest(bm, first, lo, hi, func(i int) bool { return opOK(op, cmpFloat(xs[i-lo], lit.F)) })
			return
		}
		applyTest(bm, first, lo, hi, func(i int) bool { return opOK(op, algebra.NewFloat(xs[i-lo]).Compare(lit)) })
	default:
		col := c.RIdx
		if v := cv.Col(col); v.Rep == storage.RepFloat {
			ys := v.F
			applyTest(bm, first, lo, hi, func(i int) bool { return opOK(op, cmpFloat(xs[i-lo], ys[i])) })
			return
		}
		applyTest(bm, first, lo, hi, func(i int) bool { return opOK(op, algebra.NewFloat(xs[i-lo]).Compare(rows[i][col])) })
	}
}

// evalArithLane evaluates a compiled arithmetic tree into out (out[i-lo] is
// the value for row i): column leaves stream from typed vectors where the
// column holds one payload class, literal leaves broadcast, and interior
// nodes combine lanes element-wise. Semantics are BoundArith.EvalRow's
// (AsFloat coercion, IEEE division) by construction.
func evalArithLane(a *algebra.BoundArith, cv *storage.ColView, rows []algebra.Tuple, lo, hi int, out []float64) {
	if a.Leaf() {
		if a.Idx < 0 {
			c := a.Val.AsFloat()
			for i := range out {
				out[i] = c
			}
			return
		}
		switch v := cv.Col(a.Idx); v.Rep {
		case storage.RepInt:
			xs := v.I
			for i := lo; i < hi; i++ {
				out[i-lo] = float64(xs[i])
			}
		case storage.RepFloat:
			copy(out, v.F[lo:hi])
		case storage.RepStr:
			for i := range out {
				out[i] = 0 // AsFloat: strings coerce to 0
			}
		default:
			for i := lo; i < hi; i++ {
				out[i-lo] = rows[i][a.Idx].AsFloat()
			}
		}
		return
	}
	evalArithLane(a.L, cv, rows, lo, hi, out)
	tmp := make([]float64, hi-lo)
	evalArithLane(a.R, cv, rows, lo, hi, tmp)
	switch a.Op {
	case algebra.Add:
		for i := range out {
			out[i] += tmp[i]
		}
	case algebra.Sub:
		for i := range out {
			out[i] -= tmp[i]
		}
	case algebra.Mul:
		for i := range out {
			out[i] *= tmp[i]
		}
	case algebra.Div:
		for i := range out {
			out[i] /= tmp[i]
		}
	}
}

// litRepOf classifies a literal the way storage classifies column payloads.
func litRepOf(v algebra.Value) storage.ColRep {
	switch v.Kind {
	case catalog.Int, catalog.Date:
		return storage.RepInt
	case catalog.Float:
		return storage.RepFloat
	}
	return storage.RepStr
}

// denseConstOrd is the dense column-vs-literal loop for totally ordered
// payloads (int64, string — where Go's operators agree with Value.Compare).
func denseConstOrd[T int64 | string](bm *Bitmap, first bool, xs []T, c T, op algebra.CmpOp, lo, hi int) {
	if first {
		switch op {
		case algebra.EQ:
			for i := lo; i < hi; i++ {
				if xs[i] == c {
					bm.Set(i)
				}
			}
		case algebra.NE:
			for i := lo; i < hi; i++ {
				if xs[i] != c {
					bm.Set(i)
				}
			}
		case algebra.LT:
			for i := lo; i < hi; i++ {
				if xs[i] < c {
					bm.Set(i)
				}
			}
		case algebra.LE:
			for i := lo; i < hi; i++ {
				if xs[i] <= c {
					bm.Set(i)
				}
			}
		case algebra.GT:
			for i := lo; i < hi; i++ {
				if xs[i] > c {
					bm.Set(i)
				}
			}
		case algebra.GE:
			for i := lo; i < hi; i++ {
				if xs[i] >= c {
					bm.Set(i)
				}
			}
		}
		return
	}
	switch op {
	case algebra.EQ:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] == c })
	case algebra.NE:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] != c })
	case algebra.LT:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] < c })
	case algebra.LE:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] <= c })
	case algebra.GT:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] > c })
	case algebra.GE:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] >= c })
	}
}

// denseColsOrd is the dense column-vs-column loop for ordered payloads.
func denseColsOrd[T int64 | string](bm *Bitmap, first bool, xs, ys []T, op algebra.CmpOp, lo, hi int) {
	if first {
		switch op {
		case algebra.EQ:
			for i := lo; i < hi; i++ {
				if xs[i] == ys[i] {
					bm.Set(i)
				}
			}
		case algebra.NE:
			for i := lo; i < hi; i++ {
				if xs[i] != ys[i] {
					bm.Set(i)
				}
			}
		case algebra.LT:
			for i := lo; i < hi; i++ {
				if xs[i] < ys[i] {
					bm.Set(i)
				}
			}
		case algebra.LE:
			for i := lo; i < hi; i++ {
				if xs[i] <= ys[i] {
					bm.Set(i)
				}
			}
		case algebra.GT:
			for i := lo; i < hi; i++ {
				if xs[i] > ys[i] {
					bm.Set(i)
				}
			}
		case algebra.GE:
			for i := lo; i < hi; i++ {
				if xs[i] >= ys[i] {
					bm.Set(i)
				}
			}
		}
		return
	}
	switch op {
	case algebra.EQ:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] == ys[i] })
	case algebra.NE:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] != ys[i] })
	case algebra.LT:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] < ys[i] })
	case algebra.LE:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] <= ys[i] })
	case algebra.GT:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] > ys[i] })
	case algebra.GE:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] >= ys[i] })
	}
}

// denseConstFloat is the dense float column-vs-literal loop, reproducing
// Value.Compare's NaN order (NaN is a singleton class BEFORE every other
// numeric, so e.g. NaN < c holds for every non-NaN c even though the IEEE
// comparison is false).
func denseConstFloat(bm *Bitmap, first bool, xs []float64, c float64, op algebra.CmpOp, lo, hi int) {
	if c != c { // NaN literal
		switch op {
		case algebra.EQ, algebra.LE:
			applyTest(bm, first, lo, hi, func(i int) bool { return xs[i] != xs[i] })
		case algebra.NE, algebra.GT:
			applyTest(bm, first, lo, hi, func(i int) bool { return xs[i] == xs[i] })
		case algebra.GE:
			applyConst(bm, first, lo, hi, true)
		case algebra.LT:
			applyConst(bm, first, lo, hi, false)
		}
		return
	}
	if first {
		switch op {
		case algebra.EQ:
			for i := lo; i < hi; i++ {
				if xs[i] == c {
					bm.Set(i)
				}
			}
		case algebra.NE:
			for i := lo; i < hi; i++ {
				if xs[i] != c { // NaN != c: true, matching the class order
					bm.Set(i)
				}
			}
		case algebra.LT:
			for i := lo; i < hi; i++ {
				if x := xs[i]; x < c || x != x {
					bm.Set(i)
				}
			}
		case algebra.LE:
			for i := lo; i < hi; i++ {
				if x := xs[i]; x <= c || x != x {
					bm.Set(i)
				}
			}
		case algebra.GT:
			for i := lo; i < hi; i++ {
				if xs[i] > c { // NaN > c: false, matching the class order
					bm.Set(i)
				}
			}
		case algebra.GE:
			for i := lo; i < hi; i++ {
				if xs[i] >= c {
					bm.Set(i)
				}
			}
		}
		return
	}
	switch op {
	case algebra.EQ:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] == c })
	case algebra.NE:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] != c })
	case algebra.LT:
		bm.FilterRange(lo, hi, func(i int) bool { x := xs[i]; return x < c || x != x })
	case algebra.LE:
		bm.FilterRange(lo, hi, func(i int) bool { x := xs[i]; return x <= c || x != x })
	case algebra.GT:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] > c })
	case algebra.GE:
		bm.FilterRange(lo, hi, func(i int) bool { return xs[i] >= c })
	}
}

// cmpFloat is Value.Compare's float-vs-float arm.
func cmpFloat(a, b float64) int {
	an, bn := a != a, b != b
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Gather: selection bitmap → output relation (with fused projection).

// gatherProject emits the selected rows projected to the target schema, in
// ascending row order. Identical schemas alias the input tuples, exactly as
// the row filter does.
func gatherProject(in *storage.Relation, bm *Bitmap, target algebra.Schema, par storage.Par) *storage.Relation {
	rows := in.Rows()
	same := schemaEqual(in.Schema(), target)
	var idx []int
	if !same {
		idx = projIndexes(in.Schema(), target)
	}
	par = par.Norm()
	if par.Enabled() && in.Len() >= storage.ParMinRows {
		ranges := storage.MorselRanges(in.Len(), par.Partitions)
		outs := make([][]algebra.Tuple, len(ranges))
		forRanges(ranges, par.Workers, func(ri, lo, hi int) {
			var arena tupleArena
			acc := make([]algebra.Tuple, 0, bm.CountRange(lo, hi))
			bm.ForEachRange(lo, hi, func(i int) {
				if same {
					acc = append(acc, rows[i])
					return
				}
				row := arena.alloc(len(idx))
				for k, j := range idx {
					row[k] = rows[i][j]
				}
				acc = append(acc, row)
			})
			outs[ri] = acc
		})
		return concatRanges(target, outs)
	}
	out := storage.NewRelation(target)
	out.Reserve(bm.Count())
	var arena tupleArena
	bm.ForEach(func(i int) {
		if same {
			out.Append(rows[i])
			return
		}
		row := arena.alloc(len(idx))
		for k, j := range idx {
			row[k] = rows[i][j]
		}
		out.Append(row)
	})
	return out
}

// filterProjectB is the fused batch select: predicate over column vectors
// into a selection bitmap, then one gather pass straight into the target
// schema — no intermediate filtered relation.
func filterProjectB(in *storage.Relation, pred algebra.Pred, target algebra.Schema, par storage.Par) *storage.Relation {
	return gatherProject(in, batchSelBitmap(in, pred, par), target, par)
}

// ---------------------------------------------------------------------------
// Hash join with fused projection.

// gatherCol routes one output column of a join to a side tuple: the build
// tuple at idx or the probe tuple at idx.
type gatherCol struct {
	build bool
	idx   int
}

// joinGatherSpec resolves the target schema against the l++r concat layout
// and re-expresses each column as a (side, index) pair under the given
// orientation.
func joinGatherSpec(target, outSchema algebra.Schema, lWidth int, buildIsLeft bool) []gatherCol {
	spec := make([]gatherCol, len(target))
	for k, j := range projIndexes(outSchema, target) {
		fromLeft := j < lWidth
		idx := j
		if !fromLeft {
			idx = j - lWidth
		}
		spec[k] = gatherCol{build: fromLeft == buildIsLeft, idx: idx}
	}
	return spec
}

// twoCmp is one residual conjunct re-expressed over (build, probe) tuple
// pairs instead of the concatenated row.
type twoCmp struct {
	op             algebra.CmpOp
	lBuild, rBuild bool
	li, ri         int // tuple index, -1 for literal
	lv, rv         algebra.Value
	la, ra         *twoArith
}

// twoArith is a compiled arithmetic tree whose column leaves are already
// resolved to a (side, index) pair, so residual arithmetic never touches a
// concatenated row either.
type twoArith struct {
	op    algebra.ArithOp
	l, r  *twoArith
	build bool
	idx   int // -1 for a literal leaf
	val   algebra.Value
}

// eval evaluates the side-resolved arithmetic tree over a tuple pair.
func (a *twoArith) eval(bt, pt algebra.Tuple) float64 {
	if a.l == nil && a.r == nil {
		if a.idx < 0 {
			return a.val.AsFloat()
		}
		if a.build {
			return bt[a.idx].AsFloat()
		}
		return pt[a.idx].AsFloat()
	}
	lf, rf := a.l.eval(bt, pt), a.r.eval(bt, pt)
	switch a.op {
	case algebra.Add:
		return lf + rf
	case algebra.Sub:
		return lf - rf
	case algebra.Mul:
		return lf * rf
	}
	return lf / rf
}

// compileTwoArith resolves every column leaf of a compiled arithmetic tree
// through the join's side function.
func compileTwoArith(a *algebra.BoundArith, side func(int) (bool, int)) *twoArith {
	if a == nil {
		return nil
	}
	if a.Leaf() {
		if a.Idx < 0 {
			return &twoArith{idx: -1, val: a.Val}
		}
		b, i := side(a.Idx)
		return &twoArith{build: b, idx: i}
	}
	return &twoArith{op: a.Op, l: compileTwoArith(a.L, side), r: compileTwoArith(a.R, side), idx: -1}
}

// residualPred is a compiled residual predicate over (build, probe) tuple
// pairs: conjuncts plus disjunctive clauses, mirroring BoundPred in two-sided
// form.
type residualPred struct {
	cs      []twoCmp
	clauses [][]twoCmp
}

// compileResidual binds the residual conjuncts and clauses against the l++r
// layout and splits each side reference to its source tuple, so evaluation
// never materializes the concatenated row. Semantics equal the row engine's
// res.Eval(l++r) by construction (same Bind, same Value.Compare).
func compileResidual(residual []algebra.Cmp, clauses [][]algebra.Cmp, outSchema algebra.Schema, lWidth int, buildIsLeft bool) *residualPred {
	if len(residual) == 0 && len(clauses) == 0 {
		return nil
	}
	bp := algebra.Pred{Conjuncts: residual, Clauses: clauses}.Bind(outSchema)
	side := func(idx int) (bool, int) {
		if idx < 0 {
			return false, -1
		}
		fromLeft := idx < lWidth
		if !fromLeft {
			idx -= lWidth
		}
		return fromLeft == buildIsLeft, idx
	}
	compile := func(cs []algebra.BoundCmp) []twoCmp {
		out := make([]twoCmp, len(cs))
		for i, c := range cs {
			tc := twoCmp{op: c.Op, lv: c.LVal, rv: c.RVal}
			tc.lBuild, tc.li = side(c.LIdx)
			tc.rBuild, tc.ri = side(c.RIdx)
			tc.la = compileTwoArith(c.LArith, side)
			tc.ra = compileTwoArith(c.RArith, side)
			out[i] = tc
		}
		return out
	}
	rp := &residualPred{cs: compile(bp.Cmps())}
	for _, cl := range bp.Clauses() {
		rp.clauses = append(rp.clauses, compile(cl))
	}
	return rp
}

// eval evaluates one two-sided comparison.
func (c twoCmp) eval(bt, pt algebra.Tuple) bool {
	l, r := c.lv, c.rv
	if c.la != nil {
		l = algebra.NewFloat(c.la.eval(bt, pt))
	} else if c.li >= 0 {
		if c.lBuild {
			l = bt[c.li]
		} else {
			l = pt[c.li]
		}
	}
	if c.ra != nil {
		r = algebra.NewFloat(c.ra.eval(bt, pt))
	} else if c.ri >= 0 {
		if c.rBuild {
			r = bt[c.ri]
		} else {
			r = pt[c.ri]
		}
	}
	return opOK(c.op, l.Compare(r))
}

// eval evaluates the two-sided residual: every conjunct and at least one
// alternative of every clause.
func (rp *residualPred) eval(bt, pt algebra.Tuple) bool {
	for _, c := range rp.cs {
		if !c.eval(bt, pt) {
			return false
		}
	}
	for _, cl := range rp.clauses {
		any := false
		for _, c := range cl {
			if c.eval(bt, pt) {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}

// hashJoinB is the batch hash join with fused projection: it keys on cached
// hash columns (computed once per relation version), builds index buckets in
// build-row order, probes in probe order, and emits rows directly in the
// target schema, gathering values from the original side tuples. Output is
// byte-identical to projectToP(hashJoin…(l, r, pred), target) for the same
// orientation. No equi-conjunct falls back to the row nested loop.
func hashJoinB(l, r *storage.Relation, pred algebra.Pred, buildIsLeft bool, target algebra.Schema, par storage.Par) *storage.Relation {
	par = par.Norm()
	ls, rs := l.Schema(), r.Schema()
	outSchema := ls.Concat(rs)
	lCols, rCols, residual := splitJoinPred(pred, ls, rs)
	if len(lCols) == 0 {
		return projectToP(hashJoinPlanned(l, r, pred, buildIsLeft, par), target, par)
	}
	build, bCols := l, lCols
	probe, pCols := r, rCols
	if !buildIsLeft {
		build, bCols = r, rCols
		probe, pCols = l, lCols
	}
	bh := build.ColView().KeyHashes(bCols, par)
	ph := probe.ColView().KeyHashes(pCols, par)
	res := compileResidual(residual, pred.Clauses, outSchema, len(ls), buildIsLeft)
	spec := joinGatherSpec(target, outSchema, len(ls), buildIsLeft)

	bRows, pRows := build.Rows(), probe.Rows()
	buckets := make(map[uint64][]int32, len(bRows))
	for i := range bRows {
		h := bh[i]
		buckets[h] = append(buckets[h], int32(i))
	}
	width := len(spec)
	emitRange := func(lo, hi int) []algebra.Tuple {
		var arena tupleArena
		var acc []algebra.Tuple
		for j := lo; j < hi; j++ {
			bs := buckets[ph[j]]
			if len(bs) == 0 {
				continue
			}
			pt := pRows[j]
			for _, bi := range bs {
				bt := bRows[bi]
				if !algebra.EqualOn(pt, pCols, bt, bCols) {
					continue // hash collision across distinct keys
				}
				if res != nil && !res.eval(bt, pt) {
					continue
				}
				row := arena.alloc(width)
				for k, g := range spec {
					if g.build {
						row[k] = bt[g.idx]
					} else {
						row[k] = pt[g.idx]
					}
				}
				acc = append(acc, row)
			}
		}
		return acc
	}
	if !par.Enabled() || len(pRows) < storage.ParMinRows {
		out := storage.NewRelation(target)
		out.AppendAll(emitRange(0, len(pRows)))
		return out
	}
	ranges := storage.MorselRanges(len(pRows), par.Partitions)
	outs := make([][]algebra.Tuple, len(ranges))
	forRanges(ranges, par.Workers, func(ri, lo, hi int) {
		outs[ri] = emitRange(lo, hi)
	})
	return concatRanges(target, outs)
}

// ---------------------------------------------------------------------------
// Aggregation and dedup over cached hash columns.

// buildAggTableB is buildAggTableP keyed on the cached group-hash column, so
// a relation version aggregated twice (or aggregated after being joined on
// the same columns) never rehashes. State equals the sequential build's.
func buildAggTableB(in *storage.Relation, groupBy []algebra.ColRef, specs []algebra.AggSpec, out algebra.Schema, par storage.Par, hint int) *AggTable {
	par = par.Norm()
	if hint > in.Len() {
		hint = in.Len()
	}
	at := NewAggTableSized(in.Schema(), groupBy, specs, out, hint)
	if in.Len() == 0 {
		return at
	}
	gh := in.ColView().KeyHashes(at.groupBy, par)
	rows := in.Rows()
	if !par.Enabled() || in.Len() < storage.ParMinRows {
		for i, t := range rows {
			at.absorbOne(gh[i], t, 1)
		}
		return at
	}
	gIdx := storage.ScatterByHash(gh, par.Partitions)
	tables := make([]*AggTable, par.Partitions)
	storage.ForParts(par.Partitions, par.Workers, func(p int) {
		t := NewAggTableSized(in.Schema(), groupBy, specs, out, hint/par.Partitions+1)
		for _, i := range gIdx[p] {
			t.absorbOne(gh[i], rows[i], 1)
		}
		tables[p] = t
	})
	at = tables[0]
	for _, t := range tables[1:] {
		at.merge(t)
	}
	return at
}

// dedupB is dedup over the cached full-tuple hash column (the PartView hash
// array): parallel inputs use the keep-mask dedupP, sequential ones walk the
// rows once with cached hashes. First occurrences survive in order either
// way — byte-identical to dedup.
func dedupB(in *storage.Relation, par storage.Par) *storage.Relation {
	par = par.Norm()
	if in.Len() == 0 {
		return dedup(in)
	}
	if par.Enabled() && in.Len() >= storage.ParMinRows {
		return dedupP(in, par)
	}
	pv := in.PartView(par)
	rows := in.Rows()
	out := storage.NewRelation(in.Schema())
	seen := make(map[uint64][]algebra.Tuple, len(rows))
	for i, t := range rows {
		h := pv.Hash(i)
		bucket := seen[h]
		dup := false
		for _, prev := range bucket {
			if prev.Equal(t) {
				dup = true
				break
			}
		}
		if !dup {
			seen[h] = append(bucket, t)
			out.Append(t)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Engine dispatch: the single entry points the plan interpreters call.

// execSelect routes select + projection through the configured engine.
func execSelect(in *storage.Relation, pred algebra.Pred, target algebra.Schema, par storage.Par) *storage.Relation {
	if par.Batch {
		return filterProjectB(in, pred, target, par)
	}
	return projectToP(filterRelP(in, pred, par), target, par)
}

// execJoinSized routes a size-oriented join (build on the smaller input —
// the differential-plan rule) through the configured engine.
func execJoinSized(l, r *storage.Relation, pred algebra.Pred, target algebra.Schema, par storage.Par) *storage.Relation {
	if par.Batch {
		return hashJoinB(l, r, pred, !(r.Len() < l.Len()), target, par)
	}
	return projectToP(hashJoinP(l, r, pred, par), target, par)
}

// execJoinPlanned routes a plan-oriented join (build side fixed by the
// optimizer, see BuildLeftFromPlan) through the configured engine.
func execJoinPlanned(l, r *storage.Relation, pred algebra.Pred, buildIsLeft bool, target algebra.Schema, par storage.Par) *storage.Relation {
	if par.Batch {
		return hashJoinB(l, r, pred, buildIsLeft, target, par)
	}
	return projectToP(hashJoinPlanned(l, r, pred, buildIsLeft, par), target, par)
}

// execAgg routes a from-scratch aggregation through the configured engine.
func execAgg(in *storage.Relation, op *dag.Op, target algebra.Schema, par storage.Par, hint int) *storage.Relation {
	if par.Batch {
		return projectToP(buildAggTableB(in, op.GroupBy, op.Aggs, target, par, hint).Rows(), target, par)
	}
	return projectToP(aggregateP(in, op, target, par, hint), target, par)
}

// execBuildAgg routes mergeable aggregate-state construction (materialized
// aggregate roots) through the configured engine.
func execBuildAgg(in *storage.Relation, groupBy []algebra.ColRef, specs []algebra.AggSpec, out algebra.Schema, par storage.Par, hint int) *AggTable {
	if par.Batch {
		return buildAggTableB(in, groupBy, specs, out, par, hint)
	}
	return buildAggTableP(in, groupBy, specs, out, par, hint)
}

// execUnion routes a union through the engine (shared row path: union is a
// pure concatenation either way).
func execUnion(l, r *storage.Relation, target algebra.Schema, par storage.Par) *storage.Relation {
	return projectToP(unionAllP(l, r, par), target, par)
}

// execMinus routes a multiset difference through the configured engine; the
// batch path goes through the keep-mask/hash-carry ParMinusCOW even at one
// partition.
func execMinus(l, r *storage.Relation, target algebra.Schema, par storage.Par) *storage.Relation {
	if par.Batch {
		return projectToP(storage.ParMinusCOW(l, projectToP(r, l.Schema(), par), par), target, par)
	}
	return projectToP(minusP(l, r, par), target, par)
}

// execDedup routes duplicate elimination through the configured engine.
func execDedup(in *storage.Relation, target algebra.Schema, par storage.Par) *storage.Relation {
	if par.Batch {
		return projectToP(dedupB(in, par), target, par)
	}
	return projectToP(dedupP(in, par), target, par)
}
