package exec

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/diff"
	"repro/internal/storage"
)

// Maintainer drives incremental refresh: it walks the update numbers 1..2n
// in order and, for each, computes the differentials of every stored result,
// folds the base delta into its relation, and merges the differentials —
// exactly the one-relation-one-update-type-at-a-time propagation of paper
// §3.2.2, executing the plans chosen by the diff optimizer.
type Maintainer struct {
	Ex *Executor
	En *diff.Engine
	Ev *diff.Eval

	// diffStore holds temporarily materialized differentials within one
	// refresh cycle.
	diffStore map[diff.DiffKey]*storage.Relation
}

// NewMaintainer assembles a refresh driver. The Eval's materialization state
// must agree with what has actually been materialized in the executor.
func NewMaintainer(ex *Executor, en *diff.Engine, ev *diff.Eval) *Maintainer {
	return &Maintainer{Ex: ex, En: en, Ev: ev, diffStore: make(map[diff.DiffKey]*storage.Relation)}
}

// EvalNode computes a node's result from base relations only (no reuse of
// materialized state), following the natural operation of each equivalence
// node. It is the reference evaluator used for recomputation fallbacks and
// for verifying maintained results.
func (ex *Executor) EvalNode(e *dag.Equiv) *storage.Relation {
	op := e.Ops[0]
	switch op.Kind {
	case dag.OpScan:
		return projectTo(ex.DB.MustRelation(op.Table), e.Schema)
	case dag.OpSelect:
		return projectTo(filterRel(ex.EvalNode(op.Children[0]), op.Pred), e.Schema)
	case dag.OpProject:
		return projectTo(ex.EvalNode(op.Children[0]), e.Schema)
	case dag.OpJoin:
		return projectTo(hashJoin(ex.EvalNode(op.Children[0]), ex.EvalNode(op.Children[1]), op.Pred), e.Schema)
	case dag.OpAggregate:
		return projectTo(aggregate(ex.EvalNode(op.Children[0]), op, e.Schema), e.Schema)
	case dag.OpUnion:
		return projectTo(unionAll(ex.EvalNode(op.Children[0]), ex.EvalNode(op.Children[1])), e.Schema)
	case dag.OpMinus:
		return projectTo(minus(ex.EvalNode(op.Children[0]), ex.EvalNode(op.Children[1])), e.Schema)
	case dag.OpDedup:
		return projectTo(dedup(ex.EvalNode(op.Children[0])), e.Schema)
	default:
		panic("exec: unexpected op kind " + op.Kind.String())
	}
}

// MaterializeNode computes e from base relations and stores it (capturing
// mergeable aggregate state when e is an aggregate). A base-table node is
// "materialized" as an alias of the base relation itself: applying the base
// deltas is its maintenance, so the Maintainer never merges into it.
func (ex *Executor) MaterializeNode(e *dag.Equiv) *storage.Relation {
	if e.IsTable {
		ex.Mat[e.ID] = ex.DB.MustRelation(e.Tables[0])
		return ex.Mat[e.ID]
	}
	op := e.Ops[0]
	if op.Kind == dag.OpAggregate {
		in := ex.EvalNode(op.Children[0])
		at := NewAggTable(in.Schema(), op.GroupBy, op.Aggs, e.Schema)
		at.Absorb(in, 1)
		ex.Agg[e.ID] = at
		ex.Mat[e.ID] = projectTo(at.Rows(), e.Schema)
	} else {
		// Clone defensively: EvalNode may return a relation aliasing base
		// storage (e.g. a projection that keeps the full schema), and the
		// materialized copy is mutated by merges.
		ex.Mat[e.ID] = ex.EvalNode(e).Clone()
	}
	return ex.Mat[e.ID]
}

// Refresh propagates every pending update through all stored results.
func (mt *Maintainer) Refresh() {
	u := mt.En.U
	for i := 1; i <= u.N(); i++ {
		mt.refreshOne(i)
	}
	mt.diffStore = make(map[diff.DiffKey]*storage.Relation)
}

// refreshOne processes a single update number: phase 1 computes all
// differentials against the pre-update state, phase 2 folds the delta into
// the base relation, phase 3 merges the differentials (and performs
// recomputation fallbacks, which then see the post-update base state).
func (mt *Maintainer) refreshOne(i int) {
	u := mt.En.U
	T := u.Table(i)
	ex := mt.Ex

	type pendingMerge struct {
		e    *dag.Equiv
		rel  *storage.Relation // join-style differential, or aggregate input delta
		agg  bool
		reco bool // recompute fallback
	}
	var pending []pendingMerge

	for id := range ex.Mat {
		e := mt.En.D.Equivs[id]
		// Base-table aliases are maintained by the phase-2 delta application.
		if e.IsTable || !e.DependsOn(T) {
			continue
		}
		p := mt.Ev.DiffPlan(e, i)
		if at := ex.Agg[id]; at != nil {
			switch {
			case p.Empty:
				// nothing to do
			case len(p.FullInputs) == 0 && len(p.DiffChildren) == 1:
				// Maintainable: absorb the input's delta into the mergeable
				// state during phase 3.
				in := mt.execDiffPlan(p.DiffChildren[0])
				pending = append(pending, pendingMerge{e: e, rel: in, agg: true})
			default:
				pending = append(pending, pendingMerge{e: e, reco: true})
			}
			continue
		}
		if p.Empty {
			continue
		}
		pending = append(pending, pendingMerge{e: e, rel: mt.execDiffPlan(p)})
	}

	// Phase 2: fold the delta into the base relation.
	if u.IsInsert(i) {
		ex.DB.ApplyInserts(T)
	} else {
		ex.DB.ApplyDeletes(T)
	}

	// Phase 3: merge.
	sign := int64(1)
	if !u.IsInsert(i) {
		sign = -1
	}
	for _, pm := range pending {
		switch {
		case pm.reco:
			ex.MaterializeNode(pm.e)
		case pm.agg:
			at := ex.Agg[pm.e.ID]
			if dirty := at.Absorb(pm.rel, sign); dirty {
				ex.MaterializeNode(pm.e)
			} else {
				ex.Mat[pm.e.ID] = projectTo(at.Rows(), pm.e.Schema)
			}
		case sign > 0:
			ex.Mat[pm.e.ID].InsertAll(projectTo(pm.rel, pm.e.Schema))
		default:
			ex.Mat[pm.e.ID].SubtractAll(projectTo(pm.rel, pm.e.Schema))
		}
	}

	// Differentials materialized for update i are dead after the round.
	for k := range mt.diffStore {
		if k.Update == i {
			delete(mt.diffStore, k)
		}
	}
}

// execDiffPlan interprets a differential plan against the current state.
func (mt *Maintainer) execDiffPlan(p *diff.DiffPlan) *storage.Relation {
	ex := mt.Ex
	e := p.E
	if p.Empty {
		return storage.NewRelation(e.Schema)
	}
	if p.Reused {
		key := diff.DiffKey{EquivID: e.ID, Update: p.Update}
		if r := mt.diffStore[key]; r != nil {
			return r
		}
		// First use: compute via the node's compute plan and store.
		r := mt.execDiffPlan(mt.Ev.DiffPlan(e, p.Update))
		mt.diffStore[key] = r
		return r
	}
	op := p.Op
	u := mt.En.U
	switch op.Kind {
	case dag.OpScan:
		d := ex.DB.Delta(op.Table)
		if u.IsInsert(p.Update) {
			return projectTo(d.Plus, e.Schema)
		}
		return projectTo(d.Minus, e.Schema)
	case dag.OpSelect:
		return projectTo(filterRel(mt.execDiffPlan(p.DiffChildren[0]), op.Pred), e.Schema)
	case dag.OpProject:
		return projectTo(mt.execDiffPlan(p.DiffChildren[0]), e.Schema)
	case dag.OpJoin:
		dc := mt.execDiffPlan(p.DiffChildren[0])
		var full *storage.Relation
		if len(p.FullInputs) > 0 {
			full = ex.Run(p.FullInputs[0])
		} else {
			// Index nested loops: probe the stored inner side.
			full = ex.stored(mt.otherJoinChild(p))
		}
		return projectTo(hashJoin(dc, full, op.Pred), e.Schema)
	case dag.OpAggregate:
		// A maintainable aggregate differential consumed by an ancestor:
		// aggregate the input delta (merge semantics are the ancestor's
		// concern; the benchmark workloads materialize aggregates only at
		// roots, where the Maintainer merges via AggTable instead).
		in := mt.execDiffPlan(p.DiffChildren[0])
		return projectTo(aggregate(in, op, e.Schema), e.Schema)
	case dag.OpUnion:
		out := storage.NewRelation(e.Schema)
		for _, c := range p.DiffChildren {
			out.InsertAll(projectTo(mt.execDiffPlan(c), e.Schema))
		}
		return out
	case dag.OpMinus:
		panic("exec: differential maintenance through multiset difference is not supported; " +
			"materialize and recompute such views instead")
	default:
		panic(fmt.Sprintf("exec: differential plan over %s unsupported", op.Kind))
	}
}

// otherJoinChild identifies the join input that is NOT the differential side.
func (mt *Maintainer) otherJoinChild(p *diff.DiffPlan) *dag.Equiv {
	depID := p.DiffChildren[0].E.ID
	for _, c := range p.Op.Children {
		if c.ID != depID {
			return c
		}
	}
	panic("exec: join differential with no full side")
}
