package exec

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/diff"
	"repro/internal/storage"
)

// Maintainer drives incremental refresh: it walks the update numbers 1..2n
// in order and, for each, computes the differentials of every stored result,
// folds the base delta into its relation, and merges the differentials —
// exactly the one-relation-one-update-type-at-a-time propagation of paper
// §3.2.2, executing the plans chosen by the diff optimizer. Within one
// update step the differential computations are scheduled as a task graph
// on a worker pool (see schedule.go); across steps the propagation order is
// preserved, since each step reads the state the previous one produced.
type Maintainer struct {
	Ex *Executor
	En *diff.Engine
	Ev *diff.Eval

	// Workers bounds the worker pool that executes each step's differential
	// task graph. 0 uses runtime.GOMAXPROCS(0); 1 forces fully sequential
	// execution on the calling goroutine. Refresh results are identical at
	// any setting: tasks read only pre-step state and published dependency
	// results, and merges run in a fixed order on the caller.
	Workers int

	// Snap, when non-nil, switches Refresh to snapshot-publishing mode for
	// concurrent query serving: every relation mutated by an update step —
	// the base relation receiving the delta and every merged materialized
	// result — is replaced by a fresh copy-on-write version instead of being
	// mutated in place, and the post-step state is published as a new
	// immutable storage.Snapshot. Concurrent readers holding the previous
	// snapshot keep seeing the pre-step state untorn; the writer never
	// blocks on them. Merged rows are identical to the in-place mode (the
	// COW operations preserve row order), at the cost of one relation copy
	// per mutated result per step.
	Snap *storage.SnapshotStore

	// descCache memoizes dag.Descendants per consumer node for the task
	// graph's downward-edge validation: the DAG and the chosen plans are
	// fixed for the Maintainer's lifetime, so one traversal per consumer
	// covers every step of every refresh cycle.
	descCache map[int]map[int]bool

	// ObsDelta, when non-nil, receives every differential result computed
	// during a refresh step: the node, the updated table and sign, the diff
	// optimizer's row estimate and the actual row count. ObsFull receives,
	// once per Refresh, the post-refresh full cardinality of every maintained
	// (non-table) result against the engine's final-state estimate. The
	// feedback store hangs off both.
	ObsDelta func(e *dag.Equiv, table string, insert bool, est, act float64)
	ObsFull  func(e *dag.Equiv, est, act float64)
}

// descendants returns (computing once) the descendant ID set of a node.
func (mt *Maintainer) descendants(e *dag.Equiv) map[int]bool {
	if d, ok := mt.descCache[e.ID]; ok {
		return d
	}
	if mt.descCache == nil {
		mt.descCache = make(map[int]map[int]bool)
	}
	d := mt.En.D.Descendants(e)
	mt.descCache[e.ID] = d
	return d
}

// NewMaintainer assembles a refresh driver. The Eval's materialization state
// must agree with what has actually been materialized in the executor.
func NewMaintainer(ex *Executor, en *diff.Engine, ev *diff.Eval) *Maintainer {
	return &Maintainer{Ex: ex, En: en, Ev: ev}
}

// Rebind points the maintainer at a new engine and evaluation state — the
// adaptation swap hook. The next Refresh derives its schedule (task graphs,
// reuse edges, merge order) entirely from the new plans; the descendant
// cache is dropped because it is keyed by the previous engine's DAG. The
// executor's materialization map must already agree with the new Eval's
// state, and Workers and Snap carry over unchanged. Call only from the
// refresh writer's goroutine, between Refresh calls.
func (mt *Maintainer) Rebind(en *diff.Engine, ev *diff.Eval) {
	mt.En, mt.Ev = en, ev
	mt.descCache = nil
}

// EvalNode computes a node's result from base relations only (no reuse of
// materialized state), following the natural operation of each equivalence
// node. It is the reference evaluator used for recomputation fallbacks and
// for verifying maintained results.
func (ex *Executor) EvalNode(e *dag.Equiv) *storage.Relation {
	if ex.Par.Chain {
		return ex.evalNodeC(e).Materialize(e.Schema, ex.Par)
	}
	op := e.Ops[0]
	par := ex.Par
	switch op.Kind {
	case dag.OpScan:
		return projectToP(ex.DB.MustRelation(op.Table), e.Schema, par)
	case dag.OpSelect:
		return execSelect(ex.EvalNode(op.Children[0]), op.Pred, e.Schema, par)
	case dag.OpProject:
		return projectToP(ex.EvalNode(op.Children[0]), e.Schema, par)
	case dag.OpJoin:
		return execJoinSized(ex.EvalNode(op.Children[0]), ex.EvalNode(op.Children[1]), op.Pred, e.Schema, par)
	case dag.OpAggregate:
		return execAgg(ex.EvalNode(op.Children[0]), op, e.Schema, par, ex.sizeHint(e))
	case dag.OpUnion:
		return execUnion(ex.EvalNode(op.Children[0]), ex.EvalNode(op.Children[1]), e.Schema, par)
	case dag.OpMinus:
		return execMinus(ex.EvalNode(op.Children[0]), ex.EvalNode(op.Children[1]), e.Schema, par)
	case dag.OpDedup:
		return execDedup(ex.EvalNode(op.Children[0]), e.Schema, par)
	default:
		panic("exec: unexpected op kind " + op.Kind.String())
	}
}

// evalNodeC mirrors EvalNode arm-for-arm over batches: the whole
// recomputation pipeline stays columnar, gathering to rows only at the
// EvalNode sink.
func (ex *Executor) evalNodeC(e *dag.Equiv) *Batch {
	op := e.Ops[0]
	par := ex.Par
	switch op.Kind {
	case dag.OpScan:
		return batchOf(ex.DB.MustRelation(op.Table)).project(e.Schema, par)
	case dag.OpSelect:
		return chainSelect(ex.evalNodeC(op.Children[0]), op.Pred, e.Schema, par)
	case dag.OpProject:
		return ex.evalNodeC(op.Children[0]).project(e.Schema, par)
	case dag.OpJoin:
		l := ex.evalNodeC(op.Children[0])
		r := ex.evalNodeC(op.Children[1])
		return chainJoin(l, r, op.Pred, !(r.Len() < l.Len()), e.Schema, par)
	case dag.OpAggregate:
		return chainAgg(ex.evalNodeC(op.Children[0]), op, e.Schema, par, ex.sizeHint(e))
	case dag.OpUnion:
		return chainConcat([]*Batch{ex.evalNodeC(op.Children[0]), ex.evalNodeC(op.Children[1])}, e.Schema, par)
	case dag.OpMinus:
		return chainMinus(ex.evalNodeC(op.Children[0]), ex.evalNodeC(op.Children[1]), e.Schema, par)
	case dag.OpDedup:
		return chainDedup(ex.evalNodeC(op.Children[0]), e.Schema, par)
	default:
		panic("exec: unexpected op kind " + op.Kind.String())
	}
}

// MaterializeNode computes e from base relations and stores it (capturing
// mergeable aggregate state when e is an aggregate). A base-table node is
// "materialized" as an alias of the base relation itself: applying the base
// deltas is its maintenance, so the Maintainer never merges into it.
func (ex *Executor) MaterializeNode(e *dag.Equiv) *storage.Relation {
	if e.IsTable {
		ex.Mat[e.ID] = ex.DB.MustRelation(e.Tables[0])
		return ex.Mat[e.ID]
	}
	op := e.Ops[0]
	if op.Kind == dag.OpAggregate {
		var at *AggTable
		if ex.Par.Chain {
			at = chainBuildAgg(ex.evalNodeC(op.Children[0]), op.GroupBy, op.Aggs, e.Schema, ex.Par, ex.sizeHint(e))
		} else {
			at = execBuildAgg(ex.EvalNode(op.Children[0]), op.GroupBy, op.Aggs, e.Schema, ex.Par, ex.sizeHint(e))
		}
		ex.Agg[e.ID] = at
		ex.Mat[e.ID] = projectToP(at.Rows(), e.Schema, ex.Par)
	} else {
		// Clone defensively: EvalNode may return a relation aliasing base
		// storage (e.g. a projection that keeps the full schema), and the
		// materialized copy is mutated by merges.
		ex.Mat[e.ID] = ex.EvalNode(e).ParClone(ex.Par)
	}
	return ex.Mat[e.ID]
}

// ApplyLoggedDelta stages one relation's logged tuple batch into the
// database's pending δ+ (del=false) or δ− (del=true). It is the single entry
// point by which both live streaming ingestion and WAL replay feed the
// differential refresh path — recovery replays exactly the batches the live
// loop applied, through exactly the same staging, so the two commute. The
// relation must be covered by the update spec and the tuples must match its
// schema arity; violations are errors (log contents are external input).
func (mt *Maintainer) ApplyLoggedDelta(rel string, del bool, rows []algebra.Tuple) error {
	if !mt.En.U.Has(rel) {
		return fmt.Errorf("exec: relation %q is not in the update spec", rel)
	}
	r := mt.Ex.DB.Relation(rel)
	if r == nil {
		return fmt.Errorf("exec: unknown relation %q", rel)
	}
	arity := len(r.Schema())
	for _, t := range rows {
		if len(t) != arity {
			return fmt.Errorf("exec: relation %q: tuple arity %d, schema arity %d", rel, len(t), arity)
		}
	}
	for _, t := range rows {
		if del {
			mt.Ex.DB.LogDelete(rel, t)
		} else {
			mt.Ex.DB.LogInsert(rel, t)
		}
	}
	return nil
}

// Refresh propagates every pending update through all stored results.
func (mt *Maintainer) Refresh() {
	u := mt.En.U
	for i := 1; i <= u.N(); i++ {
		mt.refreshOne(i)
	}
	if mt.ObsFull != nil {
		for _, id := range sortedIDs(mt.Ex.Mat) {
			e := mt.En.D.Equivs[id]
			if e.IsTable {
				continue
			}
			mt.ObsFull(e, mt.En.FinalRows(e), float64(mt.Ex.Mat[id].Len()))
		}
	}
}

// pendingMerge is one maintained result's phase-3 action for the step.
type pendingMerge struct {
	e    *dag.Equiv
	task *diffTask // join-style differential, or aggregate input delta
	agg  bool
	reco bool // recompute fallback
}

// refreshOne processes a single update number: phase 1 plans and executes
// the step's differential task graph against the pre-update state
// (concurrently, shared differentials computed once — see schedule.go),
// phase 2 folds the delta into the base relation, phase 3 merges the
// differentials in ascending node order (and performs recomputation
// fallbacks, which then see the post-update base state).
func (mt *Maintainer) refreshOne(i int) {
	u := mt.En.U
	T := u.Table(i)
	ex := mt.Ex

	// Planning walks the maintained results in ascending node ID so the task
	// graph's topological order — and with it the workers=1 execution order
	// and the phase-3 merge order — is deterministic.
	sr := newStepRun(mt)
	var pending []pendingMerge
	for _, id := range sortedIDs(ex.Mat) {
		e := mt.En.D.Equivs[id]
		// Base-table aliases are maintained by the phase-2 delta application.
		if e.IsTable || !e.DependsOn(T) {
			continue
		}
		p := mt.Ev.DiffPlan(e, i)
		if at := ex.Agg[id]; at != nil {
			switch {
			case p.Empty:
				// nothing to do
			case len(p.FullInputs) == 0 && len(p.DiffChildren) == 1:
				// Maintainable: absorb the input's delta into the mergeable
				// state during phase 3.
				pending = append(pending, pendingMerge{e: e, task: sr.taskFor(p.DiffChildren[0]), agg: true})
			default:
				pending = append(pending, pendingMerge{e: e, reco: true})
			}
			continue
		}
		if p.Empty {
			continue
		}
		pending = append(pending, pendingMerge{e: e, task: sr.taskFor(p)})
	}

	// Phase 1: execute the task graph. All inputs are pre-update state.
	sr.run(mt.Workers)

	// Every computed differential is a (estimate, actual) pair for the
	// feedback store — including shared intermediates, which later steps and
	// adaptation rounds re-estimate through the same delta sizers.
	if mt.ObsDelta != nil {
		insert := u.IsInsert(i)
		for _, t := range sr.order {
			res := t.result()
			mt.ObsDelta(t.plan.E, T, insert, t.plan.Rows, float64(res.Len()))
		}
	}

	// Phase 2: fold the delta into the base relation. In snapshot mode the
	// base gets a fresh copy-on-write version and any materialization-map
	// alias of it (base-table equivalence nodes) is re-pointed; readers
	// holding the previous snapshot keep the old version.
	cow := mt.Snap != nil
	if cow {
		var nb *storage.Relation
		if u.IsInsert(i) {
			nb = ex.DB.ApplyInsertsCOW(T)
		} else {
			nb = ex.DB.ApplyDeletesCOWPar(T, ex.Par)
		}
		for id := range ex.Mat {
			if e := mt.En.D.Equivs[id]; e.IsTable && e.Tables[0] == T {
				ex.Mat[id] = nb
			}
		}
	} else if u.IsInsert(i) {
		ex.DB.ApplyInsertsPar(T, ex.Par)
	} else {
		ex.DB.ApplyDeletesPar(T, ex.Par)
	}

	// Phase 3: merge. The aggregate and recompute arms install fresh
	// relations in both modes; the append/subtract arms mutate in place
	// normally and build a copy-on-write version in snapshot mode.
	sign := int64(1)
	if !u.IsInsert(i) {
		sign = -1
	}
	for _, pm := range pending {
		switch {
		case pm.reco:
			ex.MaterializeNode(pm.e)
		case pm.agg:
			at := ex.Agg[pm.e.ID]
			if dirty := at.Absorb(pm.task.result(), sign); dirty {
				ex.MaterializeNode(pm.e)
			} else {
				ex.Mat[pm.e.ID] = projectToP(at.Rows(), pm.e.Schema, ex.Par)
			}
		case sign > 0:
			delta := projectToP(pm.task.result(), pm.e.Schema, ex.Par)
			if delta.Len() == 0 {
				continue // identity merge: keep the current (published) version
			}
			if cow {
				ex.Mat[pm.e.ID] = storage.UnionCOW(ex.Mat[pm.e.ID], delta)
			} else {
				ex.Mat[pm.e.ID].InsertAllPar(delta, ex.Par)
			}
		default:
			delta := projectToP(pm.task.result(), pm.e.Schema, ex.Par)
			if delta.Len() == 0 {
				continue
			}
			if cow {
				ex.Mat[pm.e.ID] = storage.ParMinusCOW(ex.Mat[pm.e.ID], delta, ex.Par)
			} else {
				ex.Mat[pm.e.ID].ParSubtractAll(delta, ex.Par)
			}
		}
	}
	if cow {
		// Publish the post-step state: readers switch to it atomically, each
		// seeing either the whole step or none of it.
		mt.Snap.PublishState(ex.DB, ex.Mat)
	}
	// The step's temporarily materialized differentials die with sr here.
}

// sortedIDs returns the keys of a materialization map in ascending order.
func sortedIDs(m map[int]*storage.Relation) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
