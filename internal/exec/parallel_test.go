package exec

// Partition-parallel operator tests: every operator in parallel.go must be
// byte-identical to its sequential twin in ops.go at any partition/worker
// count (aggregation: set-equal with identical counts, since group output
// order is map order in both). Run under -race in CI, so the co-partitioned
// worker fan-out is exercised for races as well as results. A refresh-level
// partition-count independence test rides on the randomized maintenance
// harness fixture.

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/storage"
)

// forcePar lowers the sequential-fallback threshold so small test inputs
// exercise the parallel paths — and pins joins to the co-partitioned path
// (broadcast is covered by forceBroadcast) — restoring both afterwards.
func forcePar(t *testing.T) {
	t.Helper()
	oldMin, oldBc := storage.ParMinRows, broadcastMaxBuild
	storage.ParMinRows, broadcastMaxBuild = 0, 0
	t.Cleanup(func() { storage.ParMinRows, broadcastMaxBuild = oldMin, oldBc })
}

// forceBroadcast additionally routes every parallel join through the
// broadcast fast path.
func forceBroadcast(t *testing.T) {
	t.Helper()
	old := broadcastMaxBuild
	broadcastMaxBuild = 1 << 30
	t.Cleanup(func() { broadcastMaxBuild = old })
}

// testPars is the partition sweep every operator equivalence check runs:
// prime and non-prime fan-outs, with fewer workers than partitions and a
// worker per partition.
var testPars = []storage.Par{
	{Partitions: 2, Workers: 1},
	{Partitions: 4, Workers: 4},
	{Partitions: 7, Workers: 3},
}

// randRelOf builds a relation over single-table columns with random small-domain
// rows (lots of duplicate keys, so joins fan out and dedup has work).
func randRelOf(rng *rand.Rand, rel string, cols []string, n int) *storage.Relation {
	schema := make(algebra.Schema, len(cols))
	for i, c := range cols {
		schema[i] = algebra.Col{Rel: rel, Name: c}
	}
	r := storage.NewRelation(schema)
	for i := 0; i < n; i++ {
		t := make(algebra.Tuple, len(cols))
		for j := range t {
			t[j] = algebra.NewInt(int64(rng.Intn(12)))
		}
		r.Insert(t)
	}
	return r
}

func identical(t *testing.T, what string, want, got *storage.Relation) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: %d vs %d rows", what, want.Len(), got.Len())
	}
	for i, tu := range want.Rows() {
		if !tu.Equal(got.Rows()[i]) {
			t.Fatalf("%s: rows differ at %d", what, i)
		}
	}
}

func TestParallelOperatorsByteIdentical(t *testing.T) {
	forcePar(t)
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := randRelOf(rng, "l", []string{"k", "v"}, 120+rng.Intn(120))
		r := randRelOf(rng, "r", []string{"k", "w"}, 100+rng.Intn(150))

		filt := algebra.And(algebra.CmpConst("l.k", algebra.LT, algebra.NewInt(8)))
		proj := algebra.Schema{{Rel: "l", Name: "v"}, {Rel: "l", Name: "k"}}
		joinEq := algebra.And(algebra.Eq("l.k", "r.k"))
		joinRes := algebra.And(algebra.Eq("l.k", "r.k"),
			algebra.Cmp{Op: algebra.LT, L: algebra.C("l.v"), R: algebra.C("r.w")})
		cross := algebra.And(algebra.Cmp{Op: algebra.LT, L: algebra.C("l.v"), R: algebra.C("r.w")})

		for _, par := range testPars {
			identical(t, "filterRelP", filterRel(l, filt), filterRelP(l, filt, par))
			identical(t, "projectToP", projectTo(l, proj), projectToP(l, proj, par))
			identical(t, "hashJoinP", hashJoin(l, r, joinEq), hashJoinP(l, r, joinEq, par))
			identical(t, "hashJoinP+residual", hashJoin(l, r, joinRes), hashJoinP(l, r, joinRes, par))
			identical(t, "nestedLoopP", hashJoin(l, r, cross), hashJoinP(l, r, cross, par))
			identical(t, "dedupP", dedup(l), dedupP(l.Clone(), par))
			lr := randRelOf(rng, "l", []string{"k", "v"}, 80)
			identical(t, "minusP", minus(l, lr), minusP(l, lr, par))
			identical(t, "unionAllP", unionAll(l, lr), unionAllP(l, lr, par))
		}
	}
}

// TestBroadcastJoinByteIdentical covers the small-build fast path: the same
// joins as the co-partitioned sweep, routed through the broadcast table.
func TestBroadcastJoinByteIdentical(t *testing.T) {
	forcePar(t)
	forceBroadcast(t)
	for seed := int64(20); seed < 26; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := randRelOf(rng, "l", []string{"k", "v"}, 60+rng.Intn(80))
		r := randRelOf(rng, "r", []string{"k", "w"}, 200+rng.Intn(200))
		joinEq := algebra.And(algebra.Eq("l.k", "r.k"))
		joinRes := algebra.And(algebra.Eq("l.k", "r.k"),
			algebra.Cmp{Op: algebra.LT, L: algebra.C("l.v"), R: algebra.C("r.w")})
		for _, par := range testPars {
			identical(t, "broadcast", hashJoin(l, r, joinEq), hashJoinP(l, r, joinEq, par))
			identical(t, "broadcast+residual", hashJoin(l, r, joinRes), hashJoinP(l, r, joinRes, par))
			identical(t, "broadcast-flip", hashJoin(r, l, algebra.And(algebra.Eq("r.k", "l.k"))),
				hashJoinP(r, l, algebra.And(algebra.Eq("r.k", "l.k")), par))
		}
	}
}

func TestParallelHashJoinBuildSideRule(t *testing.T) {
	forcePar(t)
	rng := rand.New(rand.NewSource(42))
	// Probe larger than build and vice versa: both orientations must match
	// the sequential join exactly (the emit order depends on which side
	// builds).
	small := randRelOf(rng, "l", []string{"k", "v"}, 40)
	big := randRelOf(rng, "r", []string{"k", "w"}, 400)
	pred := algebra.And(algebra.Eq("l.k", "r.k"))
	for _, par := range testPars {
		identical(t, "small⋈big", hashJoin(small, big, pred), hashJoinP(small, big, pred, par))
		flip := algebra.And(algebra.Eq("r.k", "l.k"))
		identical(t, "big⋈small", hashJoin(big, small, flip), hashJoinP(big, small, flip, par))
	}
}

func TestParallelAggregateSetEqual(t *testing.T) {
	forcePar(t)
	rng := rand.New(rand.NewSource(5))
	in := randRelOf(rng, "l", []string{"k", "v"}, 300)
	op := &dag.Op{
		Kind:    dag.OpAggregate,
		GroupBy: []algebra.ColRef{algebra.C("l.k")},
		Aggs: []algebra.AggSpec{
			{Func: algebra.Count},
			{Func: algebra.Sum, Col: algebra.C("l.v")},
			{Func: algebra.Min, Col: algebra.C("l.v")},
			{Func: algebra.Max, Col: algebra.C("l.v")},
		},
	}
	out := algebra.Schema{
		{Rel: "l", Name: "k"}, {Rel: "", Name: "count"},
		{Rel: "", Name: "sum_v"}, {Rel: "", Name: "min_v"}, {Rel: "", Name: "max_v"},
	}
	want := aggregate(in, op, out)
	for _, par := range testPars {
		got := aggregateP(in, op, out, par, 16)
		if !storage.EqualMultiset(want, got) {
			t.Fatalf("partitions=%d: aggregate diverged as multiset (%d vs %d rows)",
				par.Partitions, want.Len(), got.Len())
		}
	}
	// The merged table must keep absorbing deltas exactly like a
	// sequentially built one (it becomes the maintained aggregate state).
	at := buildAggTableP(in, op.GroupBy, op.Aggs, out, storage.Par{Partitions: 4, Workers: 4}, 0)
	seq := NewAggTable(in.Schema(), op.GroupBy, op.Aggs, out)
	seq.Absorb(in, 1)
	delta := randRelOf(rng, "l", []string{"k", "v"}, 50)
	at.Absorb(delta, 1)
	seq.Absorb(delta, 1)
	if !storage.EqualMultiset(seq.Rows(), at.Rows()) {
		t.Fatalf("merged AggTable diverged from sequential after absorbing a delta")
	}
}

// TestRefreshPartitionCountIndependence is the refresh-level golden test:
// the same workload refreshed at partitions ∈ {1, 4, 7} must leave the
// maintained (join-only, so order-deterministic) result byte-identical and
// exact against recomputation at every count.
func TestRefreshPartitionCountIndependence(t *testing.T) {
	forcePar(t)
	run := func(partitions int) *storage.Relation {
		f := newFixture(77)
		view := algebra.NewSelect(
			algebra.And(algebra.CmpConst("orders.o_price", algebra.LT, algebra.NewFloat(80))),
			ordersCustomer(f.cat))
		h := newHarness(t, f, []string{"orders", "customer"}, 10, nil, view)
		h.ex.Par = storage.Par{Partitions: partitions, Workers: partitions}
		var nextKey int64 = 10000
		for c := 0; c < 3; c++ {
			f.logUpdates("orders", 20, &nextKey)
			f.logUpdates("customer", 8, &nextKey)
			h.mt.Refresh()
		}
		h.checkViews(t)
		return h.ex.Mat[h.roots[0].ID]
	}
	base := run(1)
	for _, p := range []int{4, 7} {
		identical(t, "refresh@partitions", base, run(p))
	}
}
