package exec

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/storage"
)

func twoColSchema(rel string) algebra.Schema {
	return algebra.Schema{
		{Rel: rel, Name: "k", Type: catalog.Int, Width: 8},
		{Rel: rel, Name: "v", Type: catalog.Int, Width: 8},
	}
}

func relOf(rel string, rows ...[2]int64) *storage.Relation {
	r := storage.NewRelation(twoColSchema(rel))
	for _, row := range rows {
		r.Insert(algebra.Tuple{algebra.NewInt(row[0]), algebra.NewInt(row[1])})
	}
	return r
}

func TestHashJoinEquiOnly(t *testing.T) {
	l := relOf("l", [2]int64{1, 10}, [2]int64{2, 20}, [2]int64{2, 21})
	r := relOf("r", [2]int64{2, 200}, [2]int64{3, 300})
	out := hashJoin(l, r, algebra.And(algebra.Eq("l.k", "r.k")))
	if out.Len() != 2 {
		t.Fatalf("want 2 matches (both l-rows with k=2), got %d", out.Len())
	}
}

func TestHashJoinWithResidual(t *testing.T) {
	l := relOf("l", [2]int64{1, 10}, [2]int64{1, 30})
	r := relOf("r", [2]int64{1, 20})
	pred := algebra.And(
		algebra.Eq("l.k", "r.k"),
		algebra.Cmp{Op: algebra.LT, L: algebra.C("l.v"), R: algebra.C("r.v")},
	)
	out := hashJoin(l, r, pred)
	if out.Len() != 1 {
		t.Fatalf("residual l.v<r.v should keep only (10<20): got %d rows", out.Len())
	}
	if out.Rows()[0][1].I != 10 {
		t.Errorf("wrong surviving row: %v", out.Rows()[0])
	}
}

func TestHashJoinNoEquiFallsBackToNL(t *testing.T) {
	l := relOf("l", [2]int64{1, 1}, [2]int64{2, 2})
	r := relOf("r", [2]int64{5, 1}, [2]int64{6, 3})
	pred := algebra.And(algebra.Cmp{Op: algebra.GT, L: algebra.C("r.v"), R: algebra.C("l.v")})
	out := hashJoin(l, r, pred)
	// pairs where r.v > l.v: (1,·)x(·,3): l.v=1 with r.v=3; l.v=2 with r.v=3. → 2
	if out.Len() != 2 {
		t.Fatalf("nested-loop fallback wrong: %d rows", out.Len())
	}
}

func TestHashJoinDuplicateMultiplicities(t *testing.T) {
	// Multiset semantics: duplicates multiply.
	l := relOf("l", [2]int64{1, 1}, [2]int64{1, 1})
	r := relOf("r", [2]int64{1, 2}, [2]int64{1, 2}, [2]int64{1, 2})
	out := hashJoin(l, r, algebra.And(algebra.Eq("l.k", "r.k")))
	if out.Len() != 6 {
		t.Fatalf("2×3 duplicates should give 6 rows, got %d", out.Len())
	}
}

func TestMinusAndUnion(t *testing.T) {
	a := relOf("t", [2]int64{1, 1}, [2]int64{1, 1}, [2]int64{2, 2})
	b := relOf("t", [2]int64{1, 1}, [2]int64{3, 3})
	u := unionAll(a, b)
	if u.Len() != 5 {
		t.Errorf("union all should concatenate: %d", u.Len())
	}
	m := minus(a, b)
	if m.Len() != 2 {
		t.Errorf("monus should remove one copy of (1,1): %d rows", m.Len())
	}
	// a unchanged (operators are non-destructive).
	if a.Len() != 3 {
		t.Errorf("input mutated")
	}
}

func TestDedup(t *testing.T) {
	a := relOf("t", [2]int64{1, 1}, [2]int64{1, 1}, [2]int64{2, 2})
	d := dedup(a)
	if d.Len() != 2 {
		t.Errorf("dedup: %d rows", d.Len())
	}
}

func TestFilterRel(t *testing.T) {
	a := relOf("t", [2]int64{1, 5}, [2]int64{2, 15}, [2]int64{3, 25})
	got := filterRel(a, algebra.And(algebra.CmpConst("t.v", algebra.GT, algebra.NewInt(10))))
	if got.Len() != 2 {
		t.Errorf("filter: %d rows", got.Len())
	}
}

func TestSplitJoinPred(t *testing.T) {
	ls, rs := twoColSchema("l"), twoColSchema("r")
	pred := algebra.And(
		algebra.Eq("l.k", "r.k"),
		algebra.Cmp{Op: algebra.LT, L: algebra.C("l.v"), R: algebra.C("r.v")},
		algebra.Eq("r.v", "l.v"), // reversed sides still usable as hash key
	)
	lc, rc, residual := splitJoinPred(pred, ls, rs)
	if len(lc) != 2 || len(rc) != 2 {
		t.Errorf("2 hash keys expected, got %d/%d", len(lc), len(rc))
	}
	if len(residual) != 1 {
		t.Errorf("1 residual conjunct expected, got %d", len(residual))
	}
}

func TestProjectToMissingColumnPanics(t *testing.T) {
	a := relOf("t", [2]int64{1, 1})
	defer func() {
		if recover() == nil {
			t.Errorf("missing column should panic")
		}
	}()
	projectTo(a, algebra.Schema{{Rel: "x", Name: "nope", Type: catalog.Int}})
}

func TestAggTableMinMaxDirtyDetection(t *testing.T) {
	sch := twoColSchema("t")
	at := NewAggTable(sch,
		[]algebra.ColRef{algebra.C("t.k")},
		[]algebra.AggSpec{{Func: algebra.Max, Col: algebra.C("t.v")}},
		algebra.Schema{sch[0], {Rel: "agg", Name: "max_v", Type: catalog.Float, Width: 8}})
	at.Absorb(relOf("t", [2]int64{1, 10}, [2]int64{1, 20}), 1)
	// Deleting a non-extremum is clean; deleting the max is dirty.
	if dirty := at.Absorb(relOf("t", [2]int64{1, 10}), -1); dirty {
		t.Errorf("deleting non-max should not be dirty")
	}
	if dirty := at.Absorb(relOf("t", [2]int64{1, 20}), -1); !dirty {
		t.Errorf("deleting the max must flag recomputation")
	}
}

func TestAggTableGroupDisappears(t *testing.T) {
	sch := twoColSchema("t")
	at := NewAggTable(sch,
		[]algebra.ColRef{algebra.C("t.k")},
		[]algebra.AggSpec{{Func: algebra.Count}},
		algebra.Schema{sch[0], {Rel: "agg", Name: "count", Type: catalog.Int, Width: 8}})
	batch := relOf("t", [2]int64{1, 1})
	at.Absorb(batch, 1)
	if at.Rows().Len() != 1 {
		t.Fatalf("one group expected")
	}
	at.Absorb(batch, -1)
	if at.Rows().Len() != 0 {
		t.Errorf("emptied group should vanish, got %d", at.Rows().Len())
	}
}
