package exec_test

// In-package-coverage companion to internal/exec/equivtest: the same
// differential-oracle discipline (row engine as reference, batch and
// partitioned configurations must reproduce it byte-for-byte) driven from
// the executor's external test package so the batch kernels' coverage is
// attributed to internal/exec itself. The equivtest package holds the
// harness; this file holds compact operator sweeps plus the dense-path
// corner cases (uniform typed columns, column-vs-column comparisons,
// word-aligned parallel bitmap fills) that the randomized sweeps only hit
// probabilistically.

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/exec/equivtest"
	"repro/internal/storage"
)

// lowParMinRows engages the parallel and batch kernels on small test inputs,
// restoring the production threshold afterwards.
func lowParMinRows(t *testing.T) {
	t.Helper()
	prev := storage.ParMinRows
	storage.ParMinRows = 16
	t.Cleanup(func() { storage.ParMinRows = prev })
}

// checkAll evaluates node in every engine configuration against the row
// oracle.
func checkAll(t *testing.T, trial int, cat *catalog.Catalog, db *storage.Database,
	node algebra.Node, sorted bool) {
	t.Helper()
	d := dag.New(cat)
	root := d.AddQuery("q", node)
	oracle := exec.NewExecutor(db)
	oracle.Par = equivtest.Oracle().Par
	want := oracle.EvalNode(root)
	for _, m := range equivtest.Modes() {
		ex := exec.NewExecutor(db)
		ex.Par = m.Par
		got := ex.EvalNode(root)
		var err error
		if sorted {
			err = equivtest.EqualSorted(want, got)
		} else {
			err = equivtest.Identical(want, got)
		}
		if err != nil {
			t.Errorf("trial %d mode %s: %v\nnode: %s", trial, m.Name, err, node.String())
		}
	}
}

func TestBatchOperatorSweep(t *testing.T) {
	lowParMinRows(t)
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		t1 := equivtest.RandTable(rng, cat, db, "r1", 3+rng.Intn(3), 48+rng.Intn(200), true)
		t2 := equivtest.RandTable(rng, cat, db, "r2", 2+rng.Intn(3), 48+rng.Intn(150), true)

		// Filter with a random (possibly cross-class, possibly col-vs-col)
		// predicate.
		checkAll(t, trial, cat, db,
			algebra.NewSelect(equivtest.RandPred(rng, t1), algebra.NewScan(cat, "r1")), false)

		// Hash join on the shared Int key with an occasional residual.
		conj := []algebra.Cmp{algebra.Eq(t1.QCol(0), t2.QCol(0))}
		if trial%2 == 0 {
			conj = append(conj, algebra.Cmp{Op: algebra.LE,
				L: algebra.C(t1.QCol(rng.Intn(len(t1.Cols)))),
				R: algebra.C(t2.QCol(rng.Intn(len(t2.Cols))))})
		}
		checkAll(t, trial, cat, db, algebra.NewJoin(algebra.Pred{Conjuncts: conj},
			algebra.NewScan(cat, "r1"), algebra.NewScan(cat, "r2")), false)

		// Union, minus, dedup over selections of one table.
		checkAll(t, trial, cat, db, algebra.NewUnion(
			algebra.NewSelect(equivtest.RandPred(rng, t1), algebra.NewScan(cat, "r1")),
			algebra.NewSelect(equivtest.RandPred(rng, t1), algebra.NewScan(cat, "r1"))), false)
		checkAll(t, trial, cat, db, algebra.NewMinus(
			algebra.NewSelect(equivtest.RandPred(rng, t1), algebra.NewScan(cat, "r1")),
			algebra.NewSelect(equivtest.RandPred(rng, t1), algebra.NewScan(cat, "r1"))), false)
		checkAll(t, trial, cat, db, algebra.NewDedup(algebra.NewScan(cat, "r2")), false)

		// Aggregation over the join key (NaN-free data lives in column 0,
		// which is always Int).
		checkAll(t, trial, cat, db, algebra.NewAggregate(
			[]algebra.ColRef{algebra.C(t1.QCol(0))},
			[]algebra.AggSpec{{Func: algebra.Count}, {Func: algebra.Min, Col: algebra.C(t1.QCol(0))}},
			algebra.NewScan(cat, "r1")), true)
	}
}

// denseTable registers a table whose columns are uniformly typed, so every
// ColVec takes a dense representation and the typed comparison loops
// (denseConstOrd / denseColsOrd / denseConstFloat) run rather than the
// row-fallback path.
func denseTable(rng *rand.Rand, cat *catalog.Catalog, db *storage.Database,
	name string, types []catalog.Type, nRows int) equivtest.Table {
	cols := make([]catalog.Column, len(types))
	for i, ty := range types {
		cols[i] = catalog.Column{Name: "c" + string(rune('0'+i)), Type: ty, Width: 8}
	}
	tb := &catalog.Table{Name: name, Columns: cols, PrimaryKey: []string{"c0"},
		Stats: catalog.TableStats{Rows: int64(nRows)}}
	cat.AddTable(tb)
	db.Create(name, algebra.TableSchema(tb, name))
	rel := db.MustRelation(name)
	for r := 0; r < nRows; r++ {
		row := make(algebra.Tuple, len(cols))
		for i, ty := range types {
			row[i] = equivtest.RandValue(rng, ty, ty == catalog.Float)
		}
		rel.Insert(row)
	}
	return equivtest.Table{Name: name, Cols: cols}
}

func TestBatchDenseColumnPaths(t *testing.T) {
	lowParMinRows(t)
	ops := []algebra.CmpOp{algebra.EQ, algebra.NE, algebra.LT, algebra.LE, algebra.GT, algebra.GE}
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(6000 + trial)))
		for _, ty := range []catalog.Type{catalog.Int, catalog.Float, catalog.String, catalog.Date} {
			cat, db := catalog.New(), storage.NewDatabase()
			tb := denseTable(rng, cat, db, "d1", []catalog.Type{ty, ty, ty}, 80+rng.Intn(120))

			// Column vs same-class literal: the dense typed loop.
			lit := equivtest.RandValue(rng, ty, true)
			op := ops[rng.Intn(len(ops))]
			checkAll(t, trial, cat, db, algebra.NewSelect(
				algebra.Pred{Conjuncts: []algebra.Cmp{algebra.CmpConst(tb.QCol(0), op, lit)}},
				algebra.NewScan(cat, "d1")), false)

			// Column vs column of the same class, both conjunct positions
			// (leading conjunct = dense fill, trailing = FilterRange
			// composition).
			checkAll(t, trial, cat, db, algebra.NewSelect(
				algebra.Pred{Conjuncts: []algebra.Cmp{
					{Op: ops[rng.Intn(len(ops))], L: algebra.C(tb.QCol(0)), R: algebra.C(tb.QCol(1))},
					{Op: ops[rng.Intn(len(ops))], L: algebra.C(tb.QCol(1)), R: algebra.C(tb.QCol(2))},
				}},
				algebra.NewScan(cat, "d1")), false)

			// Cross-class literal against a dense column: constant verdict
			// (every numeric orders before every string, etc.).
			other := catalog.String
			if ty == catalog.String {
				other = catalog.Int
			}
			checkAll(t, trial, cat, db, algebra.NewSelect(
				algebra.Pred{Conjuncts: []algebra.Cmp{
					algebra.CmpConst(tb.QCol(0), op, equivtest.RandValue(rng, other, true))}},
				algebra.NewScan(cat, "d1")), false)
		}
	}
}

// TestBatchLiteralOnLeft exercises the literal-side normalization (swapOp):
// predicates arrive with the literal on the left when views are authored
// that way.
func TestBatchLiteralOnLeft(t *testing.T) {
	lowParMinRows(t)
	ops := []algebra.CmpOp{algebra.EQ, algebra.NE, algebra.LT, algebra.LE, algebra.GT, algebra.GE}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		tb := denseTable(rng, cat, db, "d1", []catalog.Type{catalog.Int, catalog.Float}, 100)
		for _, op := range ops {
			checkAll(t, trial, cat, db, algebra.NewSelect(
				algebra.Pred{Conjuncts: []algebra.Cmp{
					{Op: op, L: algebra.Const{Val: equivtest.RandValue(rng, catalog.Int, false)},
						R: algebra.C(tb.QCol(0))}}},
				algebra.NewScan(cat, "d1")), false)
		}
	}
}

// TestBatchLargeParallelFill pushes a single-conjunct filter over a relation
// large enough that the word-aligned parallel dense fill (not the
// sequential loop) handles it even at the production threshold.
func TestBatchLargeParallelFill(t *testing.T) {
	rng := rand.New(rand.NewSource(8000))
	cat, db := catalog.New(), storage.NewDatabase()
	n := storage.ParMinRows*2 + 37 // odd tail: the last range is word-unaligned
	tb := denseTable(rng, cat, db, "d1", []catalog.Type{catalog.Int, catalog.Float}, n)
	checkAll(t, 0, cat, db, algebra.NewSelect(
		algebra.Pred{Conjuncts: []algebra.Cmp{
			algebra.CmpConst(tb.QCol(0), algebra.GE, algebra.NewInt(3))}},
		algebra.NewScan(cat, "d1")), false)
	checkAll(t, 1, cat, db, algebra.NewDedup(algebra.NewScan(cat, "d1")), false)
}
