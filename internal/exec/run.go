package exec

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/storage"
	"repro/internal/volcano"
)

// Executor interprets physical plans against a database and a store of
// materialized results.
type Executor struct {
	DB *storage.Database
	// Mat holds materialized full results by equivalence-node ID.
	Mat map[int]*storage.Relation
	// Agg holds the mergeable state of materialized aggregate results.
	Agg map[int]*AggTable
	// Par configures partition-parallel operator execution (zero value:
	// sequential). Results are byte-identical at any setting for
	// non-aggregate operators and set-equal with identical counts for
	// aggregates; see parallel.go. Set it before sharing the executor
	// across goroutines.
	Par storage.Par
	// Sizer, when non-nil, estimates a node's final row count (the catalog-
	// derived sizers of the diff engine); materialization uses it to
	// pre-size aggregation state instead of growing from empty.
	Sizer func(e *dag.Equiv) float64
	// Obs, when non-nil, receives every operator output this executor
	// produces: the node, the optimizer's row estimate for it (PlanNode.Rows)
	// and the actual row count. The feedback store hangs off this hook to
	// accumulate observed cardinalities and estimation error; nil costs one
	// branch per operator.
	Obs func(e *dag.Equiv, est, act float64)
}

// NewExecutor wraps a database.
func NewExecutor(db *storage.Database) *Executor {
	return &Executor{
		DB:  db,
		Mat: make(map[int]*storage.Relation),
		Agg: make(map[int]*AggTable),
		Par: storage.DefaultPar(),
	}
}

// Run executes a full-result plan and returns the result in the plan
// equivalence node's schema. With Obs set, every node's actual output
// cardinality is reported against the plan's estimate — including Reuse
// reads, whose stored length is the node's true full cardinality.
func (ex *Executor) Run(p *volcano.PlanNode) *storage.Relation {
	if ex.Par.Chain {
		return ex.RunC(p).Materialize(p.E.Schema, ex.Par)
	}
	out := ex.runNode(p)
	if ex.Obs != nil {
		ex.Obs(p.E, p.Rows, float64(out.Len()))
	}
	return out
}

// RunC executes a plan as a chained columnar pipeline: every operator accepts
// and emits a Batch, and rows are gathered only when the caller materializes
// the returned batch. Per-node Obs reporting matches Run's — a batch knows
// its logical cardinality without gathering.
func (ex *Executor) RunC(p *volcano.PlanNode) *Batch {
	out := ex.runNodeC(p)
	if ex.Obs != nil {
		ex.Obs(p.E, p.Rows, float64(out.Len()))
	}
	return out
}

// runNodeC mirrors runNode arm-for-arm over batches.
func (ex *Executor) runNodeC(p *volcano.PlanNode) *Batch {
	switch p.Access {
	case volcano.Reuse:
		r := ex.Mat[p.E.ID]
		if r == nil {
			panic(fmt.Sprintf("exec: plan reuses e%d which is not materialized", p.E.ID))
		}
		return batchOf(r)
	case volcano.Probe:
		panic("exec: probe node executed directly (must be handled by its join)")
	}
	op := p.Op
	par := ex.Par
	switch op.Kind {
	case dag.OpScan:
		return batchOf(ex.DB.MustRelation(op.Table)).project(p.E.Schema, par)
	case dag.OpSelect:
		return chainSelect(ex.RunC(p.Children[0]), op.Pred, p.E.Schema, par)
	case dag.OpProject:
		return ex.RunC(p.Children[0]).project(p.E.Schema, par)
	case dag.OpJoin:
		l := ex.RunC(p.Children[0])
		var r *Batch
		if p.Algo == volcano.AlgoINL {
			r = batchOf(ex.stored(p.Children[1].E))
		} else {
			r = ex.RunC(p.Children[1])
		}
		return chainJoin(l, r, op.Pred, BuildLeftFromPlan(p), p.E.Schema, par)
	case dag.OpAggregate:
		return chainAgg(ex.RunC(p.Children[0]), op, p.E.Schema, par, ex.sizeHint(p.E))
	case dag.OpUnion:
		return chainConcat([]*Batch{ex.RunC(p.Children[0]), ex.RunC(p.Children[1])}, p.E.Schema, par)
	case dag.OpMinus:
		return chainMinus(ex.RunC(p.Children[0]), ex.RunC(p.Children[1]), p.E.Schema, par)
	case dag.OpDedup:
		return chainDedup(ex.RunC(p.Children[0]), p.E.Schema, par)
	default:
		panic("exec: unexpected op kind " + op.Kind.String())
	}
}

func (ex *Executor) runNode(p *volcano.PlanNode) *storage.Relation {
	switch p.Access {
	case volcano.Reuse:
		r := ex.Mat[p.E.ID]
		if r == nil {
			panic(fmt.Sprintf("exec: plan reuses e%d which is not materialized", p.E.ID))
		}
		return r
	case volcano.Probe:
		panic("exec: probe node executed directly (must be handled by its join)")
	}
	op := p.Op
	par := ex.Par
	switch op.Kind {
	case dag.OpScan:
		return projectToP(ex.DB.MustRelation(op.Table), p.E.Schema, par)
	case dag.OpSelect:
		return execSelect(ex.Run(p.Children[0]), op.Pred, p.E.Schema, par)
	case dag.OpProject:
		return projectToP(ex.Run(p.Children[0]), p.E.Schema, par)
	case dag.OpJoin:
		l := ex.Run(p.Children[0])
		var r *storage.Relation
		if p.Algo == volcano.AlgoINL {
			// The probed inner is read from its stored location. The in-memory
			// engine joins it hash-wise; the distinction only matters to the
			// cost model.
			r = ex.stored(p.Children[1].E)
		} else {
			r = ex.Run(p.Children[1])
		}
		return execJoinPlanned(l, r, op.Pred, BuildLeftFromPlan(p), p.E.Schema, par)
	case dag.OpAggregate:
		return execAgg(ex.Run(p.Children[0]), op, p.E.Schema, par, ex.sizeHint(p.E))
	case dag.OpUnion:
		return execUnion(ex.Run(p.Children[0]), ex.Run(p.Children[1]), p.E.Schema, par)
	case dag.OpMinus:
		return execMinus(ex.Run(p.Children[0]), ex.Run(p.Children[1]), p.E.Schema, par)
	case dag.OpDedup:
		return execDedup(ex.Run(p.Children[0]), p.E.Schema, par)
	default:
		panic("exec: unexpected op kind " + op.Kind.String())
	}
}

// BuildLeftFromPlan decides a plan join's hash-build side from the
// optimizer's row estimates: build on the left child unless the right child
// is estimated strictly smaller (the same tie-break as the size-based rule
// of hashJoin). Plan-time commitment is deliberate — the shard lowering
// (internal/shard) must pick the identical side without executing either
// input, so it and Run both route through this function.
func BuildLeftFromPlan(p *volcano.PlanNode) bool {
	return !(p.Children[1].Rows < p.Children[0].Rows)
}

// Stored returns the stored image of a plan node the way Run's INL arm reads
// its probed inner: the base relation (projected to the node schema) for
// table leaves, the materialized copy otherwise. The shard lowering uses it
// to execute Probe-access build sides coordinator-side.
func (ex *Executor) Stored(e *dag.Equiv) *storage.Relation { return ex.stored(e) }

// sizeHint estimates a node's final row count via the installed Sizer (0
// without one).
func (ex *Executor) sizeHint(e *dag.Equiv) int {
	if ex.Sizer == nil {
		return 0
	}
	return int(ex.Sizer(e))
}

// stored returns the on-disk image of a node: the base relation for table
// leaves, the materialized copy otherwise.
func (ex *Executor) stored(e *dag.Equiv) *storage.Relation {
	if e.IsTable {
		return projectToP(ex.DB.MustRelation(e.Tables[0]), e.Schema, ex.Par)
	}
	r := ex.Mat[e.ID]
	if r == nil {
		panic(fmt.Sprintf("exec: e%d is not stored", e.ID))
	}
	return r
}

// Materialize computes a plan and stores the result under its node ID. For
// aggregate roots the mergeable state is captured so the result can be
// maintained incrementally.
func (ex *Executor) Materialize(p *volcano.PlanNode) *storage.Relation {
	e := p.E
	if p.Access == volcano.Compute && p.Op.Kind == dag.OpAggregate {
		if ex.Par.Chain {
			at := chainBuildAgg(ex.RunC(p.Children[0]), p.Op.GroupBy, p.Op.Aggs, e.Schema, ex.Par, ex.sizeHint(e))
			ex.Agg[e.ID] = at
			ex.Mat[e.ID] = projectToP(at.Rows(), e.Schema, ex.Par)
			return ex.Mat[e.ID]
		}
		in := ex.Run(p.Children[0])
		at := execBuildAgg(in, p.Op.GroupBy, p.Op.Aggs, e.Schema, ex.Par, ex.sizeHint(e))
		ex.Agg[e.ID] = at
		ex.Mat[e.ID] = projectToP(at.Rows(), e.Schema, ex.Par)
		return ex.Mat[e.ID]
	}
	ex.Mat[e.ID] = ex.Run(p).ParClone(ex.Par)
	return ex.Mat[e.ID]
}
