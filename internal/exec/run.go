package exec

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/storage"
	"repro/internal/volcano"
)

// Executor interprets physical plans against a database and a store of
// materialized results.
type Executor struct {
	DB *storage.Database
	// Mat holds materialized full results by equivalence-node ID.
	Mat map[int]*storage.Relation
	// Agg holds the mergeable state of materialized aggregate results.
	Agg map[int]*AggTable
}

// NewExecutor wraps a database.
func NewExecutor(db *storage.Database) *Executor {
	return &Executor{
		DB:  db,
		Mat: make(map[int]*storage.Relation),
		Agg: make(map[int]*AggTable),
	}
}

// Run executes a full-result plan and returns the result in the plan
// equivalence node's schema.
func (ex *Executor) Run(p *volcano.PlanNode) *storage.Relation {
	switch p.Access {
	case volcano.Reuse:
		r := ex.Mat[p.E.ID]
		if r == nil {
			panic(fmt.Sprintf("exec: plan reuses e%d which is not materialized", p.E.ID))
		}
		return r
	case volcano.Probe:
		panic("exec: probe node executed directly (must be handled by its join)")
	}
	op := p.Op
	switch op.Kind {
	case dag.OpScan:
		return projectTo(ex.DB.MustRelation(op.Table), p.E.Schema)
	case dag.OpSelect:
		return projectTo(filterRel(ex.Run(p.Children[0]), op.Pred), p.E.Schema)
	case dag.OpProject:
		return projectTo(ex.Run(p.Children[0]), p.E.Schema)
	case dag.OpJoin:
		l := ex.Run(p.Children[0])
		var r *storage.Relation
		if p.Algo == volcano.AlgoINL {
			// The probed inner is read from its stored location. The in-memory
			// engine joins it hash-wise; the distinction only matters to the
			// cost model.
			r = ex.stored(p.Children[1].E)
		} else {
			r = ex.Run(p.Children[1])
		}
		return projectTo(hashJoin(l, r, op.Pred), p.E.Schema)
	case dag.OpAggregate:
		return projectTo(aggregate(ex.Run(p.Children[0]), op, p.E.Schema), p.E.Schema)
	case dag.OpUnion:
		return projectTo(unionAll(ex.Run(p.Children[0]), ex.Run(p.Children[1])), p.E.Schema)
	case dag.OpMinus:
		return projectTo(minus(ex.Run(p.Children[0]), ex.Run(p.Children[1])), p.E.Schema)
	case dag.OpDedup:
		return projectTo(dedup(ex.Run(p.Children[0])), p.E.Schema)
	default:
		panic("exec: unexpected op kind " + op.Kind.String())
	}
}

// stored returns the on-disk image of a node: the base relation for table
// leaves, the materialized copy otherwise.
func (ex *Executor) stored(e *dag.Equiv) *storage.Relation {
	if e.IsTable {
		return projectTo(ex.DB.MustRelation(e.Tables[0]), e.Schema)
	}
	r := ex.Mat[e.ID]
	if r == nil {
		panic(fmt.Sprintf("exec: e%d is not stored", e.ID))
	}
	return r
}

// Materialize computes a plan and stores the result under its node ID. For
// aggregate roots the mergeable state is captured so the result can be
// maintained incrementally.
func (ex *Executor) Materialize(p *volcano.PlanNode) *storage.Relation {
	e := p.E
	if p.Access == volcano.Compute && p.Op.Kind == dag.OpAggregate {
		in := ex.Run(p.Children[0])
		at := NewAggTable(in.Schema(), p.Op.GroupBy, p.Op.Aggs, e.Schema)
		at.Absorb(in, 1)
		ex.Agg[e.ID] = at
		ex.Mat[e.ID] = projectTo(at.Rows(), e.Schema)
		return ex.Mat[e.ID]
	}
	ex.Mat[e.ID] = ex.Run(p).Clone()
	return ex.Mat[e.ID]
}
