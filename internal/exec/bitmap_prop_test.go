package exec

// Property tests for the selection-bitmap algebra against a naive []bool
// model: random operation sequences applied to both representations must
// agree bit-for-bit after every step, and the packed invariant (no bits set
// at positions >= Len) must hold so word-level Count/Not/And never see
// garbage in the tail.

import (
	"math/rand"
	"testing"
)

// boolModel is the reference implementation: every Bitmap operation restated
// over a plain bool slice.
type boolModel []bool

func (m boolModel) set(i int)   { m[i] = true }
func (m boolModel) clear(i int) { m[i] = false }
func (m boolModel) setRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		m[i] = true
	}
}
func (m boolModel) clearRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		m[i] = false
	}
}
func (m boolModel) and(o boolModel) {
	for i := range m {
		m[i] = m[i] && o[i]
	}
}
func (m boolModel) andNot(o boolModel) {
	for i := range m {
		m[i] = m[i] && !o[i]
	}
}
func (m boolModel) or(o boolModel) {
	for i := range m {
		m[i] = m[i] || o[i]
	}
}
func (m boolModel) not() {
	for i := range m {
		m[i] = !m[i]
	}
}
func (m boolModel) filterRange(lo, hi int, pred func(i int) bool) {
	for i := lo; i < hi; i++ {
		if m[i] && !pred(i) {
			m[i] = false
		}
	}
}
func (m boolModel) count() int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

// checkAgainstModel asserts the bitmap matches the model exactly and that no
// tail bits beyond Len are set.
func checkAgainstModel(t *testing.T, step int, b *Bitmap, m boolModel) {
	t.Helper()
	if b.Len() != len(m) {
		t.Fatalf("step %d: Len %d vs model %d", step, b.Len(), len(m))
	}
	for i := range m {
		if b.Get(i) != m[i] {
			t.Fatalf("step %d: bit %d: bitmap %v, model %v", step, i, b.Get(i), m[i])
		}
	}
	if got, want := b.Count(), m.count(); got != want {
		t.Fatalf("step %d: Count %d, model %d", step, got, want)
	}
	// Packed invariant: bits at positions >= n must be zero, or word-level
	// Count/And/Not would corrupt results.
	if b.Len()%64 != 0 && len(b.words) > 0 {
		tail := b.words[len(b.words)-1] >> uint(b.Len()%64)
		if tail != 0 {
			t.Fatalf("step %d: tail bits set beyond Len %d: %#x", step, b.Len(), tail)
		}
	}
}

// randRange draws lo <= hi <= n, including empty and full ranges.
func randRange(rng *rand.Rand, n int) (int, int) {
	lo, hi := rng.Intn(n+1), rng.Intn(n+1)
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi
}

func TestBitmapMatchesBoolModel(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		// Lengths straddling word boundaries: 1..200 covers 0, 63, 64, 65,
		// 127, 128 neighborhoods across trials.
		n := 1 + rng.Intn(200)
		if trial < 8 { // force the exact boundary lengths early
			n = []int{1, 63, 64, 65, 127, 128, 129, 192}[trial]
		}
		b := NewBitmap(n)
		m := make(boolModel, n)
		// A second operand for the binary operations, kept in sync the same way.
		ob := NewBitmap(n)
		om := make(boolModel, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				ob.Set(i)
				om.set(i)
			}
		}

		for step := 0; step < 120; step++ {
			switch rng.Intn(10) {
			case 0:
				i := rng.Intn(n)
				b.Set(i)
				m.set(i)
			case 1:
				i := rng.Intn(n)
				b.Clear(i)
				m.clear(i)
			case 2:
				lo, hi := randRange(rng, n)
				b.SetRange(lo, hi)
				m.setRange(lo, hi)
			case 3:
				lo, hi := randRange(rng, n)
				b.ClearRange(lo, hi)
				m.clearRange(lo, hi)
			case 4:
				b.And(ob)
				m.and(om)
			case 5:
				b.AndNot(ob)
				m.andNot(om)
			case 6:
				b.Or(ob)
				m.or(om)
			case 7:
				b.Not()
				m.not()
			case 8:
				// Selection-vector composition: keep only survivors of a
				// random predicate over a random range.
				lo, hi := randRange(rng, n)
				k := 1 + rng.Intn(4)
				pred := func(i int) bool { return i%k != 0 }
				b.FilterRange(lo, hi, pred)
				m.filterRange(lo, hi, pred)
			case 9:
				if rng.Intn(2) == 0 {
					b.SetAll()
					m.setRange(0, n)
				} else {
					b.ClearAll()
					m.clearRange(0, n)
				}
			}
			checkAgainstModel(t, step, b, m)
		}

		// Read-side agreement on the final state.
		lo, hi := randRange(rng, n)
		if got, want := b.CountRange(lo, hi), boolModel(m[lo:hi]).count(); got != want {
			t.Fatalf("trial %d: CountRange(%d,%d) = %d, model %d", trial, lo, hi, got, want)
		}
		var visited []int
		b.ForEachRange(lo, hi, func(i int) { visited = append(visited, i) })
		j := 0
		for i := lo; i < hi; i++ {
			if m[i] {
				if j >= len(visited) || visited[j] != i {
					t.Fatalf("trial %d: ForEachRange missed or misordered bit %d", trial, i)
				}
				j++
			}
		}
		if j != len(visited) {
			t.Fatalf("trial %d: ForEachRange visited %d extra bits", trial, len(visited)-j)
		}
		idx := b.Indices()
		if len(idx) != m.count() {
			t.Fatalf("trial %d: Indices len %d, model count %d", trial, len(idx), m.count())
		}
		for k := 1; k < len(idx); k++ {
			if idx[k] <= idx[k-1] {
				t.Fatalf("trial %d: Indices not strictly increasing at %d", trial, k)
			}
		}
		for _, i := range idx {
			if !m[i] {
				t.Fatalf("trial %d: Indices reported unset bit %d", trial, i)
			}
		}
	}
}

func TestBitmapBoolRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3000))
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		m := make([]bool, n)
		for i := range m {
			m[i] = rng.Intn(2) == 0
		}
		b := FromBools(m)
		got := b.ToBools()
		if len(got) != n {
			t.Fatalf("n=%d: round trip length %d", n, len(got))
		}
		for i := range m {
			if got[i] != m[i] {
				t.Fatalf("n=%d: bit %d flipped in round trip", n, i)
			}
		}
	}
}
