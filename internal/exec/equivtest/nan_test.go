package equivtest

// Deterministic regression cases for the float semantics where a naive
// vectorized loop diverges from Value.Compare: NaN is a singleton class
// ordered BEFORE every other numeric (so NaN < 5 is true even though the
// IEEE comparison is false), and -0.0 equals 0.0 under Compare while staying
// bit-distinct in output.

import (
	"math"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/storage"
)

// floatTable registers a one-float-column table with the given values.
func floatTable(cat *catalog.Catalog, db *storage.Database, vals []float64) {
	t := &catalog.Table{Name: "f", Columns: []catalog.Column{
		{Name: "x", Type: catalog.Float, Width: 8},
	}, PrimaryKey: []string{"x"}, Stats: catalog.TableStats{Rows: int64(len(vals))}}
	cat.AddTable(t)
	db.Create("f", algebra.TableSchema(t, "f"))
	rel := db.MustRelation("f")
	for _, v := range vals {
		rel.Insert(algebra.Tuple{algebra.NewFloat(v)})
	}
}

func TestNaNOrderedBeforeNumerics(t *testing.T) {
	vals := []float64{math.NaN(), -1, math.Copysign(0, -1), 0, 1, 5, math.NaN(), 7}
	ops := []algebra.CmpOp{algebra.EQ, algebra.NE, algebra.LT, algebra.LE, algebra.GT, algebra.GE}
	lits := []float64{math.NaN(), math.Copysign(0, -1), 0, 5}
	for _, op := range ops {
		for _, lit := range lits {
			cat, db := catalog.New(), storage.NewDatabase()
			floatTable(cat, db, vals)
			node := algebra.NewSelect(
				algebra.Pred{Conjuncts: []algebra.Cmp{algebra.CmpConst("f.x", op, algebra.NewFloat(lit))}},
				algebra.NewScan(cat, "f"))
			d := dag.New(cat)
			root := d.AddQuery("q", node)
			oracle := exec.NewExecutor(db)
			oracle.Par = Oracle().Par
			want := oracle.EvalNode(root)
			for _, m := range Modes() {
				ex := exec.NewExecutor(db)
				ex.Par = m.Par
				if err := Identical(want, ex.EvalNode(root)); err != nil {
					t.Errorf("op %v lit %v mode %s: %v", op, lit, m.Name, err)
				}
			}
		}
	}
	// Sanity-check the oracle itself: NaN orders before 5, so x < 5 keeps
	// both NaN rows.
	cat, db := catalog.New(), storage.NewDatabase()
	floatTable(cat, db, vals)
	node := algebra.NewSelect(
		algebra.Pred{Conjuncts: []algebra.Cmp{algebra.CmpConst("f.x", algebra.LT, algebra.NewFloat(5))}},
		algebra.NewScan(cat, "f"))
	d := dag.New(cat)
	ex := exec.NewExecutor(db)
	ex.Par = storage.Par{Batch: true}
	got := ex.EvalNode(d.AddQuery("q", node))
	if got.Len() != 6 { // NaN, -1, -0.0, 0, 1, NaN
		t.Errorf("x < 5 over %v: want 6 rows (NaNs order before numerics), got %d", vals, got.Len())
	}
}

func TestSignedZeroSurvivesBitExact(t *testing.T) {
	cat, db := catalog.New(), storage.NewDatabase()
	floatTable(cat, db, []float64{math.Copysign(0, -1), 0})
	// -0.0 == 0.0 under Compare: an EQ 0 filter keeps both rows, and the
	// output must carry the original sign bits.
	node := algebra.NewSelect(
		algebra.Pred{Conjuncts: []algebra.Cmp{algebra.CmpConst("f.x", algebra.EQ, algebra.NewFloat(0))}},
		algebra.NewScan(cat, "f"))
	d := dag.New(cat)
	root := d.AddQuery("q", node)
	ex := exec.NewExecutor(db)
	ex.Par = storage.Par{Batch: true}
	got := ex.EvalNode(root)
	if got.Len() != 2 {
		t.Fatalf("EQ 0 filter: want 2 rows, got %d", got.Len())
	}
	if math.Signbit(got.Rows()[0][0].F) != true || math.Signbit(got.Rows()[1][0].F) != false {
		t.Errorf("sign bits not preserved: got %v, %v", got.Rows()[0][0], got.Rows()[1][0])
	}
}
