// Package equivtest is the differential-oracle harness for the operator
// engines: it evaluates the same operator trees through the row engine, the
// partition-parallel row engine, and the vectorized batch engine (sequential
// and partitioned), and asserts the outputs are BYTE-identical — same rows,
// same order, bit-equal values (so -0.0 vs 0.0 and NaN payloads are
// distinguished, which multiset equality cannot do). The row engine is the
// oracle; every other configuration must reproduce it exactly.
package equivtest

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/storage"
)

// Mode is one engine configuration under test.
type Mode struct {
	Name string
	Par  storage.Par
}

// Oracle is the reference configuration: the sequential row engine.
func Oracle() Mode { return Mode{Name: "row", Par: storage.Par{}} }

// Modes returns every non-oracle configuration that must reproduce the
// oracle byte-for-byte: the partitioned row engine, the batch engine, and
// the chained columnar pipeline engine, each at one, four and seven
// partitions.
func Modes() []Mode {
	return []Mode{
		{Name: "row-p4", Par: storage.Par{Partitions: 4, Workers: 4}},
		{Name: "batch", Par: storage.Par{Batch: true}},
		{Name: "batch-p4", Par: storage.Par{Partitions: 4, Workers: 4, Batch: true}},
		{Name: "batch-p7", Par: storage.Par{Partitions: 7, Workers: 7, Batch: true}},
		{Name: "chained", Par: storage.Par{Batch: true, Chain: true}},
		{Name: "chained-p4", Par: storage.Par{Partitions: 4, Workers: 4, Batch: true, Chain: true}},
		{Name: "chained-p7", Par: storage.Par{Partitions: 7, Workers: 7, Batch: true, Chain: true}},
	}
}

// bitsEqual compares two values for byte identity: equal kinds and bit-equal
// payloads. Unlike Value.Compare it distinguishes -0.0 from 0.0, Int from
// Date, and any two NaN payloads.
func bitsEqual(a, b algebra.Value) bool {
	return a.Kind == b.Kind && a.I == b.I && a.S == b.S &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

// Identical asserts byte identity of two relations: same length, same row
// order, bit-equal values. It returns a located error on the first
// divergence.
func Identical(want, got *storage.Relation) error {
	if want.Len() != got.Len() {
		return fmt.Errorf("row count: oracle %d, got %d", want.Len(), got.Len())
	}
	for i := range want.Rows() {
		wt, gt := want.Rows()[i], got.Rows()[i]
		if len(wt) != len(gt) {
			return fmt.Errorf("row %d: arity %d vs %d", i, len(wt), len(gt))
		}
		for j := range wt {
			if !bitsEqual(wt[j], gt[j]) {
				return fmt.Errorf("row %d col %d: oracle %v, got %v", i, j, wt[j], gt[j])
			}
		}
	}
	return nil
}

// EqualSorted asserts set equality with identical counts via sorted
// renderings — the cross-configuration contract for aggregate outputs, whose
// row order follows Go map iteration.
func EqualSorted(want, got *storage.Relation) error {
	ws, gs := want.SortedStrings(), got.SortedStrings()
	if len(ws) != len(gs) {
		return fmt.Errorf("row count: oracle %d, got %d", len(ws), len(gs))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			return fmt.Errorf("sorted row %d: oracle %q, got %q", i, ws[i], gs[i])
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Randomized schemas and data.

// colTypes is the type pool random schemas draw from.
var colTypes = []catalog.Type{catalog.Int, catalog.Float, catalog.String, catalog.Date}

// trickyFloats are the float payloads that distinguish the engines' float
// handling: NaN (a singleton ordered before every numeric), signed zeros
// (equal but not bit-equal), and ordinary values.
var trickyFloats = []float64{math.NaN(), math.Copysign(0, -1), 0, 1.5, -3.25, 42, 99.5}

// RandValue draws a random value of the given type. With tricky=false floats
// are whole numbers and NaN-free (for aggregate inputs, where incremental
// float sums must stay exact).
func RandValue(rng *rand.Rand, t catalog.Type, tricky bool) algebra.Value {
	switch t {
	case catalog.Int:
		return algebra.NewInt(int64(rng.Intn(10)))
	case catalog.Date:
		return algebra.NewDate(int64(rng.Intn(6)))
	case catalog.Float:
		if !tricky {
			return algebra.NewFloat(float64(rng.Intn(50)))
		}
		return algebra.NewFloat(trickyFloats[rng.Intn(len(trickyFloats))])
	default:
		return algebra.NewString(string(rune('a' + rng.Intn(5))))
	}
}

// Table is one randomly generated relation registered in a catalog/database
// pair.
type Table struct {
	Name string
	Cols []catalog.Column
}

// QCol returns the qualified name of column i.
func (tb Table) QCol(i int) string { return tb.Name + "." + tb.Cols[i].Name }

// RandTable creates a table named name with nCols random columns and nRows
// random rows, registering it in cat and db. Column 0 is always Int (a
// reliable join key); the rest draw from the type pool.
func RandTable(rng *rand.Rand, cat *catalog.Catalog, db *storage.Database,
	name string, nCols, nRows int, tricky bool) Table {
	cols := make([]catalog.Column, nCols)
	cols[0] = catalog.Column{Name: "c0", Type: catalog.Int, Width: 8}
	for i := 1; i < nCols; i++ {
		cols[i] = catalog.Column{
			Name:  fmt.Sprintf("c%d", i),
			Type:  colTypes[rng.Intn(len(colTypes))],
			Width: 8,
		}
	}
	t := &catalog.Table{Name: name, Columns: cols, PrimaryKey: []string{"c0"},
		Stats: catalog.TableStats{Rows: int64(nRows)}}
	cat.AddTable(t)
	db.Create(name, algebra.TableSchema(t, name))
	rel := db.MustRelation(name)
	for r := 0; r < nRows; r++ {
		row := make(algebra.Tuple, nCols)
		for i, c := range cols {
			row[i] = RandValue(rng, c.Type, tricky)
		}
		rel.Insert(row)
	}
	return Table{Name: name, Cols: cols}
}

// RandPred builds a random conjunction over the table: one to three
// conjuncts, each column-vs-literal or column-vs-column with a random
// operator — deliberately including cross-class comparisons (int column vs
// string literal, float column vs date column, …) to exercise the batch
// engine's class-ordering fast paths against the oracle's Value.Compare.
func RandPred(rng *rand.Rand, tb Table) algebra.Pred {
	ops := []algebra.CmpOp{algebra.EQ, algebra.NE, algebra.LT, algebra.LE, algebra.GT, algebra.GE}
	n := 1 + rng.Intn(3)
	conj := make([]algebra.Cmp, 0, n)
	for k := 0; k < n; k++ {
		op := ops[rng.Intn(len(ops))]
		ci := rng.Intn(len(tb.Cols))
		if rng.Intn(3) == 0 { // column vs column
			cj := rng.Intn(len(tb.Cols))
			conj = append(conj, algebra.Cmp{Op: op, L: algebra.C(tb.QCol(ci)), R: algebra.C(tb.QCol(cj))})
			continue
		}
		litType := tb.Cols[ci].Type
		if rng.Intn(4) == 0 { // cross-class literal
			litType = colTypes[rng.Intn(len(colTypes))]
		}
		conj = append(conj, algebra.CmpConst(tb.QCol(ci), op, RandValue(rng, litType, true)))
	}
	return algebra.Pred{Conjuncts: conj}
}
