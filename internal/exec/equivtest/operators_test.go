package equivtest

// Per-operator differential-oracle tests: every operator kernel evaluated in
// row, parallel-row, batch, and parallel-batch configurations over
// randomized schemas and data, asserting byte-identical output against the
// sequential row oracle (sorted-multiset identity for aggregates, whose row
// order follows map iteration).

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/storage"
)

func init() {
	// Engage the partition-parallel and batch-parallel kernels on the small
	// randomized inputs (the production threshold is tuned for real data).
	storage.ParMinRows = 16
}

// checkNode evaluates node in every configuration against the row oracle.
// sorted selects the aggregate comparison (sorted multiset) over strict byte
// identity.
func checkNode(t *testing.T, trial int, cat *catalog.Catalog, db *storage.Database,
	node algebra.Node, sorted bool) {
	t.Helper()
	d := dag.New(cat)
	root := d.AddQuery("q", node)
	oracle := exec.NewExecutor(db)
	oracle.Par = Oracle().Par
	want := oracle.EvalNode(root)
	for _, m := range Modes() {
		ex := exec.NewExecutor(db)
		ex.Par = m.Par
		got := ex.EvalNode(root)
		var err error
		if sorted {
			err = EqualSorted(want, got)
		} else {
			err = Identical(want, got)
		}
		if err != nil {
			t.Errorf("trial %d mode %s: %v\nnode: %s", trial, m.Name, err, node.String())
		}
	}
}

func TestFilterEquivalence(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		tb := RandTable(rng, cat, db, "r1", 3+rng.Intn(3), 48+rng.Intn(200), true)
		node := algebra.NewSelect(RandPred(rng, tb), algebra.NewScan(cat, "r1"))
		checkNode(t, trial, cat, db, node, false)
	}
}

func TestProjectEquivalence(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		tb := RandTable(rng, cat, db, "r1", 3+rng.Intn(3), 48+rng.Intn(150), true)
		// Random column subset/permutation, duplicates allowed.
		n := 1 + rng.Intn(len(tb.Cols))
		cols := make([]algebra.ColRef, n)
		for i := range cols {
			cols[i] = algebra.C(tb.QCol(rng.Intn(len(tb.Cols))))
		}
		node := algebra.NewProject(cols, algebra.NewScan(cat, "r1"))
		checkNode(t, trial, cat, db, node, false)
	}
}

// randClause builds one disjunctive clause of 2–3 alternatives over tb's
// columns (column-vs-literal and column-vs-column comparisons, tricky
// literals included).
func randClause(rng *rand.Rand, tb Table) []algebra.Cmp {
	ops := []algebra.CmpOp{algebra.EQ, algebra.NE, algebra.LT, algebra.LE, algebra.GT, algebra.GE}
	n := 2 + rng.Intn(2)
	cl := make([]algebra.Cmp, 0, n)
	for k := 0; k < n; k++ {
		op := ops[rng.Intn(len(ops))]
		ci := rng.Intn(len(tb.Cols))
		if rng.Intn(3) == 0 {
			cj := rng.Intn(len(tb.Cols))
			cl = append(cl, algebra.Cmp{Op: op, L: algebra.C(tb.QCol(ci)), R: algebra.C(tb.QCol(cj))})
			continue
		}
		cl = append(cl, algebra.CmpConst(tb.QCol(ci), op, RandValue(rng, tb.Cols[ci].Type, true)))
	}
	return cl
}

// TestFilterDisjunctionEquivalence: OR-of-comparisons selections — clauses
// alone and clauses ANDed with conjuncts — must agree bit-for-bit between
// the row oracle and the vectorized batch engine (which evaluates every
// clause in a single dense pass through a scratch bitmap, never falling back
// to per-row evaluation).
func TestFilterDisjunctionEquivalence(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(2100 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		tb := RandTable(rng, cat, db, "r1", 3+rng.Intn(3), 48+rng.Intn(200), true)
		pred := algebra.Pred{Clauses: [][]algebra.Cmp{randClause(rng, tb)}}
		if rng.Intn(2) == 0 { // AND a second clause (CNF of two disjunctions)
			pred.Clauses = append(pred.Clauses, randClause(rng, tb))
		}
		if rng.Intn(2) == 0 { // AND plain conjuncts in front
			pred.Conjuncts = RandPred(rng, tb).Conjuncts
		}
		node := algebra.NewSelect(pred, algebra.NewScan(cat, "r1"))
		checkNode(t, trial, cat, db, node, false)
	}
}

func TestHashJoinEquivalence(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		t1 := RandTable(rng, cat, db, "r1", 2+rng.Intn(3), 48+rng.Intn(150), true)
		t2 := RandTable(rng, cat, db, "r2", 2+rng.Intn(3), 48+rng.Intn(150), true)
		conj := []algebra.Cmp{algebra.Eq(t1.QCol(0), t2.QCol(0))}
		if rng.Intn(2) == 0 { // cross-side residual conjunct
			ops := []algebra.CmpOp{algebra.NE, algebra.LT, algebra.LE, algebra.GT, algebra.GE}
			conj = append(conj, algebra.Cmp{
				Op: ops[rng.Intn(len(ops))],
				L:  algebra.C(t1.QCol(rng.Intn(len(t1.Cols)))),
				R:  algebra.C(t2.QCol(rng.Intn(len(t2.Cols)))),
			})
		}
		if rng.Intn(3) == 0 { // single-side residual conjunct
			conj = append(conj, algebra.CmpConst(t2.QCol(rng.Intn(len(t2.Cols))),
				algebra.LE, RandValue(rng, catalog.Float, true)))
		}
		node := algebra.NewJoin(algebra.Pred{Conjuncts: conj},
			algebra.NewScan(cat, "r1"), algebra.NewScan(cat, "r2"))
		checkNode(t, trial, cat, db, node, false)
	}
}

// TestHashJoinDisjunctiveResidualEquivalence: an equi-join whose residual
// carries an OR-of-comparisons clause spanning both sides — the batch
// engine's two-sided residual compiler must apply clause semantics (any
// alternative passes), identically to the row oracle's Eval over the
// concatenated row.
func TestHashJoinDisjunctiveResidualEquivalence(t *testing.T) {
	ops := []algebra.CmpOp{algebra.NE, algebra.LT, algebra.LE, algebra.GT, algebra.GE}
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(2300 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		t1 := RandTable(rng, cat, db, "r1", 2+rng.Intn(3), 48+rng.Intn(150), true)
		t2 := RandTable(rng, cat, db, "r2", 2+rng.Intn(3), 48+rng.Intn(150), true)
		cl := make([]algebra.Cmp, 0, 3)
		for k := 0; k < 2+rng.Intn(2); k++ {
			switch rng.Intn(3) {
			case 0: // cross-side alternative
				cl = append(cl, algebra.Cmp{
					Op: ops[rng.Intn(len(ops))],
					L:  algebra.C(t1.QCol(rng.Intn(len(t1.Cols)))),
					R:  algebra.C(t2.QCol(rng.Intn(len(t2.Cols)))),
				})
			case 1: // build-side literal alternative
				ci := rng.Intn(len(t1.Cols))
				cl = append(cl, algebra.CmpConst(t1.QCol(ci),
					ops[rng.Intn(len(ops))], RandValue(rng, t1.Cols[ci].Type, true)))
			default: // probe-side literal alternative
				ci := rng.Intn(len(t2.Cols))
				cl = append(cl, algebra.CmpConst(t2.QCol(ci),
					ops[rng.Intn(len(ops))], RandValue(rng, t2.Cols[ci].Type, true)))
			}
		}
		pred := algebra.Pred{
			Conjuncts: []algebra.Cmp{algebra.Eq(t1.QCol(0), t2.QCol(0))},
			Clauses:   [][]algebra.Cmp{cl},
		}
		node := algebra.NewJoin(pred, algebra.NewScan(cat, "r1"), algebra.NewScan(cat, "r2"))
		checkNode(t, trial, cat, db, node, false)
	}
}

func TestNestedLoopJoinEquivalence(t *testing.T) {
	// No equi-conjunct: both engines fall back to the nested loop.
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(700 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		t1 := RandTable(rng, cat, db, "r1", 2, 20+rng.Intn(40), true)
		t2 := RandTable(rng, cat, db, "r2", 2, 20+rng.Intn(40), true)
		node := algebra.NewJoin(algebra.Pred{Conjuncts: []algebra.Cmp{{
			Op: algebra.LT, L: algebra.C(t1.QCol(0)), R: algebra.C(t2.QCol(0)),
		}}}, algebra.NewScan(cat, "r1"), algebra.NewScan(cat, "r2"))
		checkNode(t, trial, cat, db, node, false)
	}
}

func TestDedupEquivalence(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(900 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		// Narrow schema over small domains: plenty of duplicates.
		RandTable(rng, cat, db, "r1", 2, 64+rng.Intn(150), true)
		node := algebra.NewDedup(algebra.NewScan(cat, "r1"))
		checkNode(t, trial, cat, db, node, false)
	}
}

func TestMinusEquivalence(t *testing.T) {
	// l − r over two selections of the same table: overlapping multisets
	// with matching schemas.
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(1100 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		tb := RandTable(rng, cat, db, "r1", 3, 64+rng.Intn(150), true)
		node := algebra.NewMinus(
			algebra.NewSelect(RandPred(rng, tb), algebra.NewScan(cat, "r1")),
			algebra.NewSelect(RandPred(rng, tb), algebra.NewScan(cat, "r1")))
		checkNode(t, trial, cat, db, node, false)
	}
}

func TestUnionEquivalence(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1300 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		tb := RandTable(rng, cat, db, "r1", 3, 64+rng.Intn(150), true)
		node := algebra.NewUnion(
			algebra.NewSelect(RandPred(rng, tb), algebra.NewScan(cat, "r1")),
			algebra.NewSelect(RandPred(rng, tb), algebra.NewScan(cat, "r1")))
		checkNode(t, trial, cat, db, node, false)
	}
}

func TestAggregateEquivalence(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1500 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		// NaN-free whole-number data: aggregate sums must be exact so the
		// sorted-rendering comparison is meaningful.
		tb := RandTable(rng, cat, db, "r1", 3+rng.Intn(2), 64+rng.Intn(200), false)
		group := algebra.C(tb.QCol(rng.Intn(len(tb.Cols))))
		// Aggregate a numeric column if one exists beyond the group key.
		aggCol := -1
		for i, c := range tb.Cols {
			if c.Type == catalog.Int || c.Type == catalog.Float {
				aggCol = i
			}
		}
		specs := []algebra.AggSpec{{Func: algebra.Count}}
		if aggCol >= 0 {
			switch rng.Intn(4) {
			case 0:
				specs = append(specs, algebra.AggSpec{Func: algebra.Sum, Col: algebra.C(tb.QCol(aggCol))})
			case 1:
				specs = append(specs, algebra.AggSpec{Func: algebra.Avg, Col: algebra.C(tb.QCol(aggCol))})
			case 2:
				specs = append(specs, algebra.AggSpec{Func: algebra.Min, Col: algebra.C(tb.QCol(aggCol))},
					algebra.AggSpec{Func: algebra.Max, Col: algebra.C(tb.QCol(aggCol))})
			}
		}
		node := algebra.NewAggregate([]algebra.ColRef{group}, specs, algebra.NewScan(cat, "r1"))
		checkNode(t, trial, cat, db, node, true)
	}
}
