package equivtest

// Per-operator differential-oracle tests: every operator kernel evaluated in
// row, parallel-row, batch, and parallel-batch configurations over
// randomized schemas and data, asserting byte-identical output against the
// sequential row oracle (sorted-multiset identity for aggregates, whose row
// order follows map iteration).

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/storage"
)

func init() {
	// Engage the partition-parallel and batch-parallel kernels on the small
	// randomized inputs (the production threshold is tuned for real data).
	storage.ParMinRows = 16
}

// checkNode evaluates node in every configuration against the row oracle.
// sorted selects the aggregate comparison (sorted multiset) over strict byte
// identity.
func checkNode(t *testing.T, trial int, cat *catalog.Catalog, db *storage.Database,
	node algebra.Node, sorted bool) {
	t.Helper()
	d := dag.New(cat)
	root := d.AddQuery("q", node)
	oracle := exec.NewExecutor(db)
	oracle.Par = Oracle().Par
	want := oracle.EvalNode(root)
	for _, m := range Modes() {
		ex := exec.NewExecutor(db)
		ex.Par = m.Par
		got := ex.EvalNode(root)
		var err error
		if sorted {
			err = EqualSorted(want, got)
		} else {
			err = Identical(want, got)
		}
		if err != nil {
			t.Errorf("trial %d mode %s: %v\nnode: %s", trial, m.Name, err, node.String())
		}
	}
}

func TestFilterEquivalence(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		tb := RandTable(rng, cat, db, "r1", 3+rng.Intn(3), 48+rng.Intn(200), true)
		node := algebra.NewSelect(RandPred(rng, tb), algebra.NewScan(cat, "r1"))
		checkNode(t, trial, cat, db, node, false)
	}
}

func TestProjectEquivalence(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		tb := RandTable(rng, cat, db, "r1", 3+rng.Intn(3), 48+rng.Intn(150), true)
		// Random column subset/permutation, duplicates allowed.
		n := 1 + rng.Intn(len(tb.Cols))
		cols := make([]algebra.ColRef, n)
		for i := range cols {
			cols[i] = algebra.C(tb.QCol(rng.Intn(len(tb.Cols))))
		}
		node := algebra.NewProject(cols, algebra.NewScan(cat, "r1"))
		checkNode(t, trial, cat, db, node, false)
	}
}

func TestHashJoinEquivalence(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		t1 := RandTable(rng, cat, db, "r1", 2+rng.Intn(3), 48+rng.Intn(150), true)
		t2 := RandTable(rng, cat, db, "r2", 2+rng.Intn(3), 48+rng.Intn(150), true)
		conj := []algebra.Cmp{algebra.Eq(t1.QCol(0), t2.QCol(0))}
		if rng.Intn(2) == 0 { // cross-side residual conjunct
			ops := []algebra.CmpOp{algebra.NE, algebra.LT, algebra.LE, algebra.GT, algebra.GE}
			conj = append(conj, algebra.Cmp{
				Op: ops[rng.Intn(len(ops))],
				L:  algebra.C(t1.QCol(rng.Intn(len(t1.Cols)))),
				R:  algebra.C(t2.QCol(rng.Intn(len(t2.Cols)))),
			})
		}
		if rng.Intn(3) == 0 { // single-side residual conjunct
			conj = append(conj, algebra.CmpConst(t2.QCol(rng.Intn(len(t2.Cols))),
				algebra.LE, RandValue(rng, catalog.Float, true)))
		}
		node := algebra.NewJoin(algebra.Pred{Conjuncts: conj},
			algebra.NewScan(cat, "r1"), algebra.NewScan(cat, "r2"))
		checkNode(t, trial, cat, db, node, false)
	}
}

func TestNestedLoopJoinEquivalence(t *testing.T) {
	// No equi-conjunct: both engines fall back to the nested loop.
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(700 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		t1 := RandTable(rng, cat, db, "r1", 2, 20+rng.Intn(40), true)
		t2 := RandTable(rng, cat, db, "r2", 2, 20+rng.Intn(40), true)
		node := algebra.NewJoin(algebra.Pred{Conjuncts: []algebra.Cmp{{
			Op: algebra.LT, L: algebra.C(t1.QCol(0)), R: algebra.C(t2.QCol(0)),
		}}}, algebra.NewScan(cat, "r1"), algebra.NewScan(cat, "r2"))
		checkNode(t, trial, cat, db, node, false)
	}
}

func TestDedupEquivalence(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(900 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		// Narrow schema over small domains: plenty of duplicates.
		RandTable(rng, cat, db, "r1", 2, 64+rng.Intn(150), true)
		node := algebra.NewDedup(algebra.NewScan(cat, "r1"))
		checkNode(t, trial, cat, db, node, false)
	}
}

func TestMinusEquivalence(t *testing.T) {
	// l − r over two selections of the same table: overlapping multisets
	// with matching schemas.
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(1100 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		tb := RandTable(rng, cat, db, "r1", 3, 64+rng.Intn(150), true)
		node := algebra.NewMinus(
			algebra.NewSelect(RandPred(rng, tb), algebra.NewScan(cat, "r1")),
			algebra.NewSelect(RandPred(rng, tb), algebra.NewScan(cat, "r1")))
		checkNode(t, trial, cat, db, node, false)
	}
}

func TestUnionEquivalence(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1300 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		tb := RandTable(rng, cat, db, "r1", 3, 64+rng.Intn(150), true)
		node := algebra.NewUnion(
			algebra.NewSelect(RandPred(rng, tb), algebra.NewScan(cat, "r1")),
			algebra.NewSelect(RandPred(rng, tb), algebra.NewScan(cat, "r1")))
		checkNode(t, trial, cat, db, node, false)
	}
}

func TestAggregateEquivalence(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1500 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		// NaN-free whole-number data: aggregate sums must be exact so the
		// sorted-rendering comparison is meaningful.
		tb := RandTable(rng, cat, db, "r1", 3+rng.Intn(2), 64+rng.Intn(200), false)
		group := algebra.C(tb.QCol(rng.Intn(len(tb.Cols))))
		// Aggregate a numeric column if one exists beyond the group key.
		aggCol := -1
		for i, c := range tb.Cols {
			if c.Type == catalog.Int || c.Type == catalog.Float {
				aggCol = i
			}
		}
		specs := []algebra.AggSpec{{Func: algebra.Count}}
		if aggCol >= 0 {
			switch rng.Intn(4) {
			case 0:
				specs = append(specs, algebra.AggSpec{Func: algebra.Sum, Col: algebra.C(tb.QCol(aggCol))})
			case 1:
				specs = append(specs, algebra.AggSpec{Func: algebra.Avg, Col: algebra.C(tb.QCol(aggCol))})
			case 2:
				specs = append(specs, algebra.AggSpec{Func: algebra.Min, Col: algebra.C(tb.QCol(aggCol))},
					algebra.AggSpec{Func: algebra.Max, Col: algebra.C(tb.QCol(aggCol))})
			}
		}
		node := algebra.NewAggregate([]algebra.ColRef{group}, specs, algebra.NewScan(cat, "r1"))
		checkNode(t, trial, cat, db, node, true)
	}
}
