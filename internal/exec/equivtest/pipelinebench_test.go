package equivtest

// BenchmarkPipelineAllocs prices what the chained pipeline exists to remove:
// per-operator row materialization. A three-operator chain (select → join →
// aggregate) runs under each engine with allocations reported; the companion
// test asserts the chained engine actually allocates less than the batch
// engine — the batch engine gathers a full []Tuple relation at EVERY operator
// boundary, the chained engine only at the sink.

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/storage"
)

// pipelineBenchRoot builds a fixed select → join → aggregate chain over two
// deterministic tables, returning the database and DAG root to evaluate.
func pipelineBenchRoot() (*storage.Database, *dag.Equiv) {
	rng := rand.New(rand.NewSource(77))
	cat, db := catalog.New(), storage.NewDatabase()
	t1 := RandTable(rng, cat, db, "r1", 4, 4000, false)
	t2 := RandTable(rng, cat, db, "r2", 3, 2000, false)
	join := algebra.NewJoin(
		algebra.Pred{Conjuncts: []algebra.Cmp{algebra.Eq(t1.QCol(0), t2.QCol(0))}},
		algebra.NewSelect(
			algebra.Pred{Conjuncts: []algebra.Cmp{
				algebra.CmpConst(t1.QCol(1), algebra.NE, RandValue(rng, t1.Cols[1].Type, false))}},
			algebra.NewScan(cat, "r1")),
		algebra.NewScan(cat, "r2"))
	node := algebra.NewAggregate(
		[]algebra.ColRef{algebra.C(t1.QCol(2))},
		[]algebra.AggSpec{
			{Func: algebra.Count},
			{Func: algebra.Sum, Col: algebra.C(t2.QCol(1))},
		}, join)
	d := dag.New(cat)
	return db, d.AddQuery("q", node)
}

// runPipeline evaluates the chain once under par.
func runPipeline(db *storage.Database, root *dag.Equiv, par storage.Par) *storage.Relation {
	ex := exec.NewExecutor(db)
	ex.Par = par
	return ex.EvalNode(root)
}

// BenchmarkPipelineAllocs: the three-operator chain per engine. Compare
// bytes/op and allocs/op across the engine= variants.
func BenchmarkPipelineAllocs(b *testing.B) {
	db, root := pipelineBenchRoot()
	for _, m := range append([]Mode{Oracle()}, Modes()...) {
		if m.Par.Enabled() {
			continue // isolate engine cost from partition parallelism
		}
		b.Run("engine="+m.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if out := runPipeline(db, root, m.Par); out.Len() == 0 {
					b.Fatal("pipeline produced no rows; benchmark is vacuous")
				}
			}
		})
	}
}

// TestPipelineAllocsImprove holds the tentpole's allocation claim: on the
// three-operator chain the chained engine must allocate strictly less than
// the batch engine, in bytes/op and in allocs/op.
func TestPipelineAllocsImprove(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement loop")
	}
	db, root := pipelineBenchRoot()
	measure := func(par storage.Par) (bytesPerOp, allocsPerOp float64) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runPipeline(db, root, par)
			}
		})
		return float64(r.AllocedBytesPerOp()), float64(r.AllocsPerOp())
	}
	chainBytes, chainAllocs := measure(storage.Par{Batch: true, Chain: true})
	batchBytes, batchAllocs := measure(storage.Par{Batch: true})
	t.Logf("chained: %.0f B/op %.0f allocs/op; batch: %.0f B/op %.0f allocs/op",
		chainBytes, chainAllocs, batchBytes, batchAllocs)
	if chainBytes >= batchBytes {
		t.Errorf("chained engine bytes/op %.0f, want < batch %.0f", chainBytes, batchBytes)
	}
	if chainAllocs >= batchAllocs {
		t.Errorf("chained engine allocs/op %.0f, want < batch %.0f", chainAllocs, batchAllocs)
	}
}
