package equivtest

// Refresh-level equivalence: a full incremental-maintenance run (task-graph
// differentials, delta folds, merges) must produce byte-identical maintained
// results in every engine configuration — row and batch, at one, four and
// seven partitions. Each configuration rebuilds the same deterministic
// database, logs the same update batches, and refreshes; the sequential row
// run is the oracle.

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/diff"
	"repro/internal/exec"
	"repro/internal/storage"
)

// refreshFixture is one independently constructed engine stack over the
// deterministic orders/customer database.
type refreshFixture struct {
	db    *storage.Database
	ex    *exec.Executor
	mt    *exec.Maintainer
	roots []*dag.Equiv // [0] join view (byte-identity), [1] aggregate view
}

func newRefreshFixture(par storage.Par, workers int) *refreshFixture {
	cat := catalog.New()
	db := storage.NewDatabase()
	customer := &catalog.Table{Name: "customer", Columns: []catalog.Column{
		{Name: "c_key", Type: catalog.Int, Width: 8},
		{Name: "c_nation", Type: catalog.Int, Width: 8},
		{Name: "c_acct", Type: catalog.Float, Width: 8},
	}, PrimaryKey: []string{"c_key"}, Stats: catalog.TableStats{Rows: 60}}
	orders := &catalog.Table{Name: "orders", Columns: []catalog.Column{
		{Name: "o_key", Type: catalog.Int, Width: 8},
		{Name: "o_cust", Type: catalog.Int, Width: 8},
		{Name: "o_price", Type: catalog.Float, Width: 8},
	}, PrimaryKey: []string{"o_key"}, Stats: catalog.TableStats{Rows: 300}}
	cat.AddTable(customer)
	cat.AddTable(orders)
	db.Create("customer", algebra.TableSchema(customer, "customer"))
	db.Create("orders", algebra.TableSchema(orders, "orders"))
	for i := int64(1); i <= 60; i++ {
		db.MustRelation("customer").Insert(algebra.Tuple{
			algebra.NewInt(i), algebra.NewInt(1 + i%7), algebra.NewFloat(float64(i % 30))})
	}
	for i := int64(1); i <= 300; i++ {
		db.MustRelation("orders").Insert(algebra.Tuple{
			algebra.NewInt(i), algebra.NewInt(1 + i%60), algebra.NewFloat(float64(i % 100))})
	}

	join := algebra.NewJoin(algebra.And(algebra.Eq("orders.o_cust", "customer.c_key")),
		algebra.NewScan(cat, "orders"), algebra.NewScan(cat, "customer"))
	sel := algebra.NewSelect(
		algebra.And(algebra.CmpConst("orders.o_price", algebra.LT, algebra.NewFloat(70))), join)
	agg := algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("customer.c_nation")},
		[]algebra.AggSpec{
			{Func: algebra.Sum, Col: algebra.C("orders.o_price")},
			{Func: algebra.Count},
		},
		algebra.NewJoin(algebra.And(algebra.Eq("orders.o_cust", "customer.c_key")),
			algebra.NewScan(cat, "orders"), algebra.NewScan(cat, "customer")))

	d := dag.New(cat)
	r1 := d.AddQuery("vjoin", sel)
	r2 := d.AddQuery("vagg", agg)
	u := diff.UniformPercent(cat, []string{"orders", "customer"}, 10)
	en := diff.NewEngine(d, cost.NewModel(cost.Default()), u)
	ms := diff.NewMatState()
	ex := exec.NewExecutor(db)
	ex.Par = par
	for _, r := range []*dag.Equiv{r1, r2} {
		ms.Fulls.Full[r.ID] = true
		ex.MaterializeNode(r)
	}
	ev := en.NewEval(ms)
	ev.Par = par
	mt := exec.NewMaintainer(ex, en, ev)
	mt.Workers = workers
	return &refreshFixture{db: db, ex: ex, mt: mt, roots: []*dag.Equiv{r1, r2}}
}

// logUpdates stages a deterministic batch: n fresh-key inserts plus n/2
// deletes of existing rows, identical across fixtures built from the same
// key counter and seed.
func (f *refreshFixture) logUpdates(table string, n int, nextKey *int64, rng *rand.Rand) {
	rel := f.db.MustRelation(table)
	for j := 0; j < n; j++ {
		*nextKey++
		switch table {
		case "orders":
			f.db.LogInsert(table, algebra.Tuple{
				algebra.NewInt(*nextKey), algebra.NewInt(1 + *nextKey%60),
				algebra.NewFloat(float64(*nextKey % 100))})
		case "customer":
			f.db.LogInsert(table, algebra.Tuple{
				algebra.NewInt(*nextKey), algebra.NewInt(1 + *nextKey%7),
				algebra.NewFloat(float64(*nextKey % 30))})
		}
	}
	perm := rng.Perm(rel.Len())
	for j := 0; j < n/2 && j < rel.Len(); j++ {
		f.db.LogDelete(table, rel.Rows()[perm[j]].Clone())
	}
}

func TestRefreshEquivalenceAcrossEnginesAndPartitions(t *testing.T) {
	type config struct {
		name    string
		par     storage.Par
		workers int
	}
	var configs []config
	for _, parts := range []int{1, 4, 7} {
		var base storage.Par
		if parts > 1 {
			base = storage.Par{Partitions: parts, Workers: parts}
		}
		row, batch := base, base
		batch.Batch = true
		configs = append(configs,
			config{name: "row-p" + string(rune('0'+parts)), par: row, workers: parts},
			config{name: "batch-p" + string(rune('0'+parts)), par: batch, workers: parts},
		)
	}

	run := func(c config) *refreshFixture {
		f := newRefreshFixture(c.par, c.workers)
		var nk int64 = 10000
		rng := rand.New(rand.NewSource(42))
		for cycle := 0; cycle < 3; cycle++ {
			f.logUpdates("orders", 40, &nk, rng)
			f.logUpdates("customer", 10, &nk, rng)
			f.mt.Refresh()
		}
		return f
	}

	oracle := run(configs[0]) // row, sequential
	for _, c := range configs[1:] {
		f := run(c)
		if err := Identical(oracle.ex.Mat[oracle.roots[0].ID], f.ex.Mat[f.roots[0].ID]); err != nil {
			t.Errorf("%s: join view diverged from row oracle: %v", c.name, err)
		}
		if err := EqualSorted(oracle.ex.Mat[oracle.roots[1].ID], f.ex.Mat[f.roots[1].ID]); err != nil {
			t.Errorf("%s: aggregate view diverged from row oracle: %v", c.name, err)
		}
	}
}
