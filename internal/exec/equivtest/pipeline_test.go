package equivtest

// Chained-pipeline differential-oracle tests: multi-operator trees evaluated
// end to end, so the chained engine's batches actually flow across operator
// boundaries (selection vectors composing under projection, column-backed
// join outputs feeding further joins, dedups and aggregations) before the
// single sink-side gather. Every configuration of Modes() — including the
// chained engine at one, four and seven partitions — must reproduce the
// sequential row oracle byte-for-byte (sorted multiset for aggregate roots).
// Arithmetic predicates, NaN/-0.0 specials and mixed-kind (RepMixed) columns
// ride through every chain.

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/storage"
)

// randArithExpr builds a random arithmetic expression of the given depth
// whose leaves are drawn from leaf (column references and literals). The
// result is always an Arith node.
func randArithExpr(rng *rand.Rand, leaf func() algebra.Expr, depth int) algebra.Expr {
	aops := []algebra.ArithOp{algebra.Add, algebra.Sub, algebra.Mul, algebra.Div}
	var l, r algebra.Expr
	if depth > 1 && rng.Intn(2) == 0 {
		l = randArithExpr(rng, leaf, depth-1)
	} else {
		l = leaf()
	}
	if depth > 1 && rng.Intn(3) == 0 {
		r = randArithExpr(rng, leaf, depth-1)
	} else {
		r = leaf()
	}
	return algebra.A(l, aops[rng.Intn(len(aops))], r)
}

// arithLeaf draws a leaf over one table: a column reference or a literal of
// any class (division produces ±Inf/NaN; strings coerce to 0 under AsFloat).
func arithLeaf(rng *rand.Rand, tb Table) func() algebra.Expr {
	return func() algebra.Expr {
		if rng.Intn(3) == 0 {
			return algebra.Const{Val: RandValue(rng, colTypes[rng.Intn(len(colTypes))], true)}
		}
		return algebra.C(tb.QCol(rng.Intn(len(tb.Cols))))
	}
}

// randArithPred builds a conjunction with at least one arithmetic side per
// conjunct.
func randArithPred(rng *rand.Rand, tb Table) algebra.Pred {
	ops := []algebra.CmpOp{algebra.EQ, algebra.NE, algebra.LT, algebra.LE, algebra.GT, algebra.GE}
	n := 1 + rng.Intn(2)
	conj := make([]algebra.Cmp, 0, n)
	for k := 0; k < n; k++ {
		l := randArithExpr(rng, arithLeaf(rng, tb), 2)
		var r algebra.Expr
		switch rng.Intn(3) {
		case 0:
			r = randArithExpr(rng, arithLeaf(rng, tb), 1)
		case 1:
			r = algebra.C(tb.QCol(rng.Intn(len(tb.Cols))))
		default:
			r = algebra.Const{Val: RandValue(rng, colTypes[rng.Intn(len(colTypes))], true)}
		}
		conj = append(conj, algebra.Cmp{Op: ops[rng.Intn(len(ops))], L: l, R: r})
	}
	return algebra.Pred{Conjuncts: conj}
}

// TestPipelineFilterJoinAggEquivalence: select → join → aggregate as one
// chain, the canonical refresh pipeline shape. NaN-free whole-number data
// keeps sums exact for the sorted comparison.
func TestPipelineFilterJoinAggEquivalence(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(3100 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		t1 := RandTable(rng, cat, db, "r1", 3+rng.Intn(2), 64+rng.Intn(150), false)
		t2 := RandTable(rng, cat, db, "r2", 2+rng.Intn(2), 64+rng.Intn(150), false)
		join := algebra.NewJoin(
			algebra.Pred{Conjuncts: []algebra.Cmp{algebra.Eq(t1.QCol(0), t2.QCol(0))}},
			algebra.NewSelect(RandPred(rng, t1), algebra.NewScan(cat, "r1")),
			algebra.NewScan(cat, "r2"))
		specs := []algebra.AggSpec{{Func: algebra.Count}}
		for i, c := range t2.Cols {
			if c.Type == catalog.Int || c.Type == catalog.Float {
				fn := []algebra.AggFunc{algebra.Sum, algebra.Avg, algebra.Min, algebra.Max}[rng.Intn(4)]
				specs = append(specs, algebra.AggSpec{Func: fn, Col: algebra.C(t2.QCol(i))})
				break
			}
		}
		node := algebra.NewAggregate(
			[]algebra.ColRef{algebra.C(t1.QCol(rng.Intn(len(t1.Cols))))}, specs, join)
		checkNode(t, trial, cat, db, node, true)
	}
}

// TestPipelineJoinJoinDedupEquivalence: join → join → dedup as one chain, so
// a column-backed join output is itself the build or probe side of the next
// join and the dedup keys on a column-backed batch's hash fold. Tricky
// floats (NaN, -0.0) flow through every boundary.
func TestPipelineJoinJoinDedupEquivalence(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(3300 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		t1 := RandTable(rng, cat, db, "r1", 2+rng.Intn(2), 48+rng.Intn(100), true)
		t2 := RandTable(rng, cat, db, "r2", 2+rng.Intn(2), 48+rng.Intn(100), true)
		t3 := RandTable(rng, cat, db, "r3", 2, 48+rng.Intn(100), true)
		j1 := algebra.NewJoin(
			algebra.Pred{Conjuncts: []algebra.Cmp{algebra.Eq(t1.QCol(0), t2.QCol(0))}},
			algebra.NewScan(cat, "r1"), algebra.NewScan(cat, "r2"))
		j2 := algebra.NewJoin(
			algebra.Pred{Conjuncts: []algebra.Cmp{algebra.Eq(t2.QCol(0), t3.QCol(0))}},
			j1, algebra.NewScan(cat, "r3"))
		node := algebra.NewDedup(j2)
		checkNode(t, trial, cat, db, node, false)
	}
}

// TestPipelineArithFilterEquivalence: arithmetic predicates evaluated by the
// dense float lanes (unfiltered relation-backed batches), the row-at-a-time
// remap path (already-selected batches: the second select of the chain) and
// the batch-value path (column-backed join outputs) must all match the
// oracle.
func TestPipelineArithFilterEquivalence(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(3500 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		t1 := RandTable(rng, cat, db, "r1", 3+rng.Intn(3), 64+rng.Intn(200), true)
		node := algebra.NewSelect(randArithPred(rng, t1),
			algebra.NewSelect(RandPred(rng, t1), algebra.NewScan(cat, "r1")))
		checkNode(t, trial, cat, db, node, false)
	}
}

// TestPipelineArithJoinResidualEquivalence: an equi-join whose residual
// conjunct carries arithmetic spanning both sides — the two-sided residual
// compiler resolves arithmetic leaves per side, over row tuples and batch
// values alike.
func TestPipelineArithJoinResidualEquivalence(t *testing.T) {
	ops := []algebra.CmpOp{algebra.NE, algebra.LT, algebra.LE, algebra.GT, algebra.GE}
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(3700 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		t1 := RandTable(rng, cat, db, "r1", 2+rng.Intn(2), 48+rng.Intn(100), true)
		t2 := RandTable(rng, cat, db, "r2", 2+rng.Intn(2), 48+rng.Intn(100), true)
		crossLeaf := func() algebra.Expr {
			if rng.Intn(4) == 0 {
				return algebra.Const{Val: RandValue(rng, catalog.Float, true)}
			}
			if rng.Intn(2) == 0 {
				return algebra.C(t1.QCol(rng.Intn(len(t1.Cols))))
			}
			return algebra.C(t2.QCol(rng.Intn(len(t2.Cols))))
		}
		residual := algebra.Cmp{
			Op: ops[rng.Intn(len(ops))],
			L:  randArithExpr(rng, crossLeaf, 2),
			R:  algebra.C(t2.QCol(rng.Intn(len(t2.Cols)))),
		}
		pred := algebra.Pred{Conjuncts: []algebra.Cmp{
			algebra.Eq(t1.QCol(0), t2.QCol(0)), residual}}
		node := algebra.NewDedup(algebra.NewJoin(pred,
			algebra.NewScan(cat, "r1"), algebra.NewScan(cat, "r2")))
		checkNode(t, trial, cat, db, node, false)
	}
}

// mixedTable registers a table whose second column mixes every value kind in
// one column, so its ColVec degrades to RepMixed and every dense kernel takes
// its row-fallback arm.
func mixedTable(rng *rand.Rand, cat *catalog.Catalog, db *storage.Database, name string, nRows int) Table {
	cols := []catalog.Column{
		{Name: "c0", Type: catalog.Int, Width: 8},
		{Name: "c1", Type: catalog.Float, Width: 8},
	}
	tb := &catalog.Table{Name: name, Columns: cols, PrimaryKey: []string{"c0"},
		Stats: catalog.TableStats{Rows: int64(nRows)}}
	cat.AddTable(tb)
	db.Create(name, algebra.TableSchema(tb, name))
	rel := db.MustRelation(name)
	for r := 0; r < nRows; r++ {
		rel.Insert(algebra.Tuple{
			algebra.NewInt(int64(rng.Intn(8))),
			RandValue(rng, colTypes[rng.Intn(len(colTypes))], true),
		})
	}
	return Table{Name: name, Cols: cols}
}

// TestPipelineMixedRepEquivalence: chains over RepMixed columns — filtering,
// joining ON the mixed column (mixed-kind key hashing), arithmetic over it
// (AsFloat coercion of strings and dates) and dedup — stay byte-identical.
func TestPipelineMixedRepEquivalence(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(3900 + trial)))
		cat, db := catalog.New(), storage.NewDatabase()
		mixedTable(rng, cat, db, "r1", 64+rng.Intn(150))
		mixedTable(rng, cat, db, "r2", 64+rng.Intn(150))
		pred := algebra.Pred{Conjuncts: []algebra.Cmp{{
			Op: algebra.GE,
			L:  algebra.A(algebra.C("r1.c1"), algebra.Mul, algebra.Const{Val: algebra.NewFloat(2)}),
			R:  algebra.Const{Val: algebra.NewFloat(1)},
		}}}
		join := algebra.NewJoin(
			algebra.Pred{Conjuncts: []algebra.Cmp{algebra.Eq("r1.c1", "r2.c1")}},
			algebra.NewSelect(pred, algebra.NewScan(cat, "r1")),
			algebra.NewScan(cat, "r2"))
		node := algebra.NewDedup(join)
		checkNode(t, trial, cat, db, node, false)
	}
}
