package exec

// End-to-end columnar pipelines: the operator-boundary Batch type and the
// chained kernels (Par.Chain). In chained mode a plan interpreter passes
// Batches between operators instead of materialized row relations, and a
// pipeline gathers to []Value rows exactly once — at its sink
// (Batch.Materialize). A Batch is a logical relation in one of three forms:
//
//   - relation-backed: a *storage.Relation plus an optional column projection
//     (proj) and an optional selection vector (sel). Filters compose by
//     shrinking sel; projections compose by rewriting proj. Neither copies a
//     value, and the backing relation's ColView caches (typed vectors, key
//     hash columns) keep serving every downstream operator.
//   - join-backed: the two input batches plus parallel pick vectors — the
//     (build, probe) logical row pair behind every output row. A join copies
//     NO values: downstream filters compose the picks, downstream reads
//     gather straight through to the source storage, and a join feeding the
//     sink pays exactly one row gather (the same work the batch engine's
//     fused join does) instead of a column gather plus a row gather.
//   - column-backed: freshly produced column slices ([][]algebra.Value), the
//     output form of concatenations and of aggregate results re-entering the
//     pipeline.
//
// Byte-identity with the row engine is preserved by construction: every
// logical row order equals the row engine's emission order (filters keep row
// order, the join probes in probe order with build buckets in build order —
// the row join's exact emission order), and every output value is gathered
// from the original tuples or column slices, never re-encoded. Values are
// carried as algebra.Value throughout, so Int-vs-Date and Float payloads
// survive exactly (a typed lane is used only inside predicate evaluation,
// where the row engine's Value.Compare semantics are reproduced — see
// batch.go).

import (
	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/storage"
)

// batchKeyHashes caches one key-column hash vector on a Batch, mirroring the
// ColView key-hash cache for column-backed batches.
type batchKeyHashes struct {
	cols []int
	h    []uint64
}

// Batch is a columnar intermediate result flowing across operator
// boundaries. Exactly one of rel (with rows cached), jl/jr, or cols is set.
type Batch struct {
	schema algebra.Schema
	n      int // logical row count

	// Relation-backed form: logical row i, column k reads
	// rows[sel[i]][proj[k]] (sel nil: physical row i; proj nil: identity).
	rel  *storage.Relation
	rows []algebra.Tuple
	proj []int
	sel  []int32

	// Join-backed form: source column s = proj[k] (proj nil: identity) over
	// the concatenated input schema; logical row i, column k reads the left
	// input at (s, jlPick[i]) when s < jlw, else the right input at
	// (s-jlw, jrPick[i]). Picks index LOGICAL rows of the inputs; sel is
	// never set (filters compose the picks instead).
	jl, jr *Batch
	jlw    int
	jlPick []int32
	jrPick []int32

	// Column-backed form: logical row i, column k reads cols[k][sel[i]].
	cols [][]algebra.Value

	// mat lazily caches fully gathered logical columns (column()); entries
	// are indexed by batch column and invalidated by any sel change.
	mat [][]algebra.Value

	// keys caches key-column hash vectors computed on this batch.
	keys []batchKeyHashes
}

// batchOf wraps a materialized relation as a zero-copy Batch.
func batchOf(r *storage.Relation) *Batch {
	return &Batch{schema: r.Schema(), n: r.Len(), rel: r, rows: r.Rows()}
}

// Len returns the logical row count.
func (b *Batch) Len() int { return b.n }

// Schema returns the batch schema.
func (b *Batch) Schema() algebra.Schema { return b.schema }

// srcCol maps a batch column to its backing relation column.
func (b *Batch) srcCol(k int) int {
	if b.proj == nil {
		return k
	}
	return b.proj[k]
}

// phys maps a logical row to its physical index in the backing storage.
func (b *Batch) phys(i int) int32 {
	if b.sel == nil {
		return int32(i)
	}
	return b.sel[i]
}

// side resolves a join-backed batch's column k to its source batch, the
// source's column index, and the pick vector carrying the row mapping.
func (b *Batch) side(k int) (src *Batch, col int, picks []int32) {
	s := b.srcCol(k)
	if s < b.jlw {
		return b.jl, s, b.jlPick
	}
	return b.jr, s - b.jlw, b.jrPick
}

// value reads the value at logical row i, batch column k.
func (b *Batch) value(k, i int) algebra.Value {
	if b.mat != nil && b.mat[k] != nil {
		return b.mat[k][i]
	}
	if b.jl != nil {
		src, col, picks := b.side(k)
		return src.value(col, int(picks[i]))
	}
	ri := i
	if b.sel != nil {
		ri = int(b.sel[i])
	}
	if b.rel != nil {
		return b.rows[ri][b.srcCol(k)]
	}
	return b.cols[k][ri]
}

// identity reports whether a relation-backed batch's projection is the
// identity over the backing relation's layout.
func (b *Batch) identity() bool {
	if b.proj == nil {
		return true
	}
	if len(b.proj) != len(b.rel.Schema()) {
		return false
	}
	for k, j := range b.proj {
		if k != j {
			return false
		}
	}
	return true
}

// appendColumn appends batch column k's logical values to dst.
func (b *Batch) appendColumn(dst []algebra.Value, k int) []algebra.Value {
	if b.rel != nil {
		src := b.srcCol(k)
		if b.sel == nil {
			for i := 0; i < b.n; i++ {
				dst = append(dst, b.rows[i][src])
			}
			return dst
		}
		for _, ri := range b.sel {
			dst = append(dst, b.rows[ri][src])
		}
		return dst
	}
	if b.jl != nil {
		src, col, picks := b.side(k)
		off := len(dst)
		if cap(dst)-off < b.n {
			nd := make([]algebra.Value, off, off+b.n)
			copy(nd, dst)
			dst = nd
		}
		dst = dst[:off+b.n]
		src.gatherInto(dst[off:], col, picks)
		return dst
	}
	c := b.cols[k]
	if b.sel == nil {
		return append(dst, c...)
	}
	for _, ri := range b.sel {
		dst = append(dst, c[ri])
	}
	return dst
}

// column returns batch column k as a dense logical slice, caching the gather.
// Callers must not mutate the result, and must call it before handing the
// batch to concurrent workers (it writes the mat cache).
func (b *Batch) column(k int) []algebra.Value {
	if b.cols != nil && b.sel == nil {
		return b.cols[k]
	}
	if b.mat == nil {
		b.mat = make([][]algebra.Value, len(b.schema))
	}
	if b.mat[k] == nil {
		b.mat[k] = b.appendColumn(make([]algebra.Value, 0, b.n), k)
	}
	return b.mat[k]
}

// gatherInto fills dst[o] with batch column col at logical row picks[o] — the
// join's output gather, reading straight through the backing storage. A
// join-backed batch composes its own pick vector with picks and recurses to
// the source, so chained joins still gather once from original storage.
func (b *Batch) gatherInto(dst []algebra.Value, col int, picks []int32) {
	if b.mat != nil && b.mat[col] != nil {
		c := b.mat[col]
		for o, i := range picks {
			dst[o] = c[i]
		}
		return
	}
	if b.jl != nil {
		src, scol, sp := b.side(col)
		cp := make([]int32, len(picks))
		for o, i := range picks {
			cp[o] = sp[i]
		}
		src.gatherInto(dst, scol, cp)
		return
	}
	if b.rel != nil {
		src := b.srcCol(col)
		if b.sel == nil {
			for o, i := range picks {
				dst[o] = b.rows[i][src]
			}
			return
		}
		for o, i := range picks {
			dst[o] = b.rows[b.sel[i]][src]
		}
		return
	}
	c := b.cols[col]
	if b.sel == nil {
		for o, i := range picks {
			dst[o] = c[i]
		}
		return
	}
	for o, i := range picks {
		dst[o] = c[b.sel[i]]
	}
}

// gatherStrided fills dst[o*stride] with batch column col at logical row
// picks[o] — the sink's per-column write into a flat row arena, so a
// join-backed batch materializes with one value copy per cell.
func (b *Batch) gatherStrided(dst []algebra.Value, stride, col int, picks []int32) {
	if b.mat != nil && b.mat[col] != nil {
		c := b.mat[col]
		for o, i := range picks {
			dst[o*stride] = c[i]
		}
		return
	}
	if b.jl != nil {
		src, scol, sp := b.side(col)
		cp := make([]int32, len(picks))
		for o, i := range picks {
			cp[o] = sp[i]
		}
		src.gatherStrided(dst, stride, scol, cp)
		return
	}
	if b.rel != nil {
		src := b.srcCol(col)
		if b.sel == nil {
			for o, i := range picks {
				dst[o*stride] = b.rows[i][src]
			}
			return
		}
		for o, i := range picks {
			dst[o*stride] = b.rows[b.sel[i]][src]
		}
		return
	}
	c := b.cols[col]
	if b.sel == nil {
		for o, i := range picks {
			dst[o*stride] = c[i]
		}
		return
	}
	for o, i := range picks {
		dst[o*stride] = c[b.sel[i]]
	}
}

// subset restricts the batch to the given logical rows, in order — the
// survivor step of filters and dedup. A join-backed batch gathers both pick
// vectors (its only per-row state); the other forms compose a selection.
func (b *Batch) subset(idx []int32) *Batch {
	if b.jl != nil {
		lp := make([]int32, len(idx))
		rp := make([]int32, len(idx))
		for o, i := range idx {
			lp[o] = b.jlPick[i]
			rp[o] = b.jrPick[i]
		}
		return &Batch{schema: b.schema, n: len(idx), proj: b.proj,
			jl: b.jl, jr: b.jr, jlw: b.jlw, jlPick: lp, jrPick: rp}
	}
	sel := make([]int32, len(idx))
	for o, i := range idx {
		sel[o] = b.phys(int(i))
	}
	return &Batch{schema: b.schema, n: len(idx), rel: b.rel, rows: b.rows, proj: b.proj, cols: b.cols, sel: sel}
}

// eqIntSlices reports element-wise equality of two int slices.
func eqIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// keyHashes returns the typed hash of the key columns (batch indexes) for
// every logical row — element-wise equal to Tuple.HashCols on the gathered
// rows. Relation-backed batches read the ColView's cached hash column (so a
// base relation hashed by a previous operator, epoch, or shard ship never
// rehashes); join- and column-backed batches fold Value.HashInto column-wise
// and cache on the batch. Not safe for concurrent use (call before fan-out).
func (b *Batch) keyHashes(cols []int, par storage.Par) []uint64 {
	for _, k := range b.keys {
		if eqIntSlices(k.cols, cols) {
			return k.h
		}
	}
	var h []uint64
	if b.rel != nil {
		mapped := cols
		if b.proj != nil {
			mapped = make([]int, len(cols))
			for x, c := range cols {
				mapped[x] = b.proj[c]
			}
		}
		full := b.rel.ColView().KeyHashes(mapped, par)
		if b.sel == nil {
			h = full
		} else {
			h = make([]uint64, b.n)
			for i, ri := range b.sel {
				h[i] = full[ri]
			}
		}
	} else {
		h = make([]uint64, b.n)
		slices := make([][]algebra.Value, len(cols))
		for x, c := range cols {
			slices[x] = b.column(c)
		}
		seed := algebra.HashSeed()
		fill := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := seed
				for _, cs := range slices {
					v = cs[i].HashInto(v)
				}
				h[i] = v
			}
		}
		par = par.Norm()
		if !par.Enabled() || b.n < storage.ParMinRows {
			fill(0, b.n)
		} else {
			ranges := storage.MorselRanges(b.n, par.Partitions)
			forRanges(ranges, par.Workers, func(_, lo, hi int) { fill(lo, hi) })
		}
	}
	kc := make([]int, len(cols))
	copy(kc, cols)
	b.keys = append(b.keys, batchKeyHashes{cols: kc, h: h})
	return h
}

// project re-expresses the batch in the target schema without moving a
// value: relation- and join-backed batches rewrite their projection, a
// column-backed batch rearranges its column slice headers.
func (b *Batch) project(target algebra.Schema, par storage.Par) *Batch {
	if schemaEqual(b.schema, target) {
		return b
	}
	idx := projIndexes(b.schema, target)
	out := &Batch{schema: target, n: b.n, rel: b.rel, rows: b.rows, sel: b.sel,
		jl: b.jl, jr: b.jr, jlw: b.jlw, jlPick: b.jlPick, jrPick: b.jrPick}
	if b.rel != nil || b.jl != nil {
		proj := make([]int, len(idx))
		for k, j := range idx {
			proj[k] = b.srcCol(j)
		}
		out.proj = proj
	} else {
		cols := make([][]algebra.Value, len(idx))
		for k, j := range idx {
			cols[k] = b.cols[j]
		}
		out.cols = cols
	}
	if b.mat != nil {
		m := make([][]algebra.Value, len(idx))
		for k, j := range idx {
			m[k] = b.mat[j]
		}
		out.mat = m
	}
	return out
}

// leafRef is one sink column resolved through any chain of join-backed
// batches: read src (not join-backed at col) at picks[i] for output row i.
type leafRef struct {
	src   *Batch
	col   int
	picks []int32
}

// leafRefs resolves every output column of a join-backed batch to its leaf
// source, composing pick vectors ONCE per distinct join-chain side (shared
// by all the columns that ride it) rather than once per column per level.
func (b *Batch) leafRefs(width int) []leafRef {
	type edge struct{ outer, inner *int32 }
	memo := make(map[edge][]int32)
	compose := func(outer, inner []int32) []int32 {
		if len(outer) == 0 {
			return outer
		}
		key := edge{&outer[0], &inner[0]}
		cp, ok := memo[key]
		if !ok {
			cp = make([]int32, len(outer))
			for o, i := range outer {
				cp[o] = inner[i]
			}
			memo[key] = cp
		}
		return cp
	}
	var resolve func(src *Batch, col int, picks []int32) leafRef
	resolve = func(src *Batch, col int, picks []int32) leafRef {
		if src.jl == nil || (src.mat != nil && src.mat[col] != nil) {
			return leafRef{src, col, picks}
		}
		s2, c2, p2 := src.side(col)
		return resolve(s2, c2, compose(picks, p2))
	}
	refs := make([]leafRef, width)
	for k := 0; k < width; k++ {
		src, col, picks := b.side(k)
		refs[k] = resolve(src, col, picks)
	}
	return refs
}

// Materialize gathers the batch to a row relation in the target schema — the
// pipeline's single sink-side row construction. An identity batch over an
// unfiltered relation returns the relation itself, and a same-schema filtered
// batch aliases the surviving tuples, exactly as the row engine's projection
// and filter do.
func (b *Batch) Materialize(target algebra.Schema, par storage.Par) *storage.Relation {
	bb := b.project(target, par)
	alias := bb.rel != nil && bb.identity() && schemaEqual(bb.rel.Schema(), target)
	if alias && bb.sel == nil {
		return bb.rel
	}
	par = par.Norm()
	width := len(target)
	var refs []leafRef
	if bb.jl != nil {
		refs = bb.leafRefs(width)
	}
	emit := func(lo, hi int) []algebra.Tuple {
		acc := make([]algebra.Tuple, 0, hi-lo)
		if alias {
			for _, ri := range bb.sel[lo:hi] {
				acc = append(acc, bb.rows[ri])
			}
			return acc
		}
		if bb.jl != nil {
			if hi == lo {
				return acc
			}
			flat := make([]algebra.Value, (hi-lo)*width)
			for k := 0; k < width; k++ {
				r := refs[k]
				r.src.gatherStrided(flat[k:], width, r.col, r.picks[lo:hi])
			}
			for j := 0; j < hi-lo; j++ {
				acc = append(acc, algebra.Tuple(flat[j*width:(j+1)*width:(j+1)*width]))
			}
			return acc
		}
		var arena tupleArena
		if bb.rel != nil {
			for i := lo; i < hi; i++ {
				ri := int(bb.phys(i))
				row := arena.alloc(width)
				for k := range row {
					row[k] = bb.rows[ri][bb.srcCol(k)]
				}
				acc = append(acc, row)
			}
			return acc
		}
		for i := lo; i < hi; i++ {
			ri := int(bb.phys(i))
			row := arena.alloc(width)
			for k := range row {
				row[k] = bb.cols[k][ri]
			}
			acc = append(acc, row)
		}
		return acc
	}
	if !par.Enabled() || bb.n < storage.ParMinRows {
		out := storage.NewRelation(target)
		out.Reserve(bb.n)
		out.AppendAll(emit(0, bb.n))
		return out
	}
	ranges := storage.MorselRanges(bb.n, par.Partitions)
	outs := make([][]algebra.Tuple, len(ranges))
	forRanges(ranges, par.Workers, func(ri, lo, hi int) { outs[ri] = emit(lo, hi) })
	return concatRanges(target, outs)
}

// ---------------------------------------------------------------------------
// Row-at-a-time evaluation over batch values (the non-dense fallback paths).

// evalBoundArithAt evaluates a batch-schema compiled arithmetic tree at
// logical row i.
func evalBoundArithAt(a *algebra.BoundArith, b *Batch, i int) float64 {
	if a.Leaf() {
		if a.Idx >= 0 {
			return b.value(a.Idx, i).AsFloat()
		}
		return a.Val.AsFloat()
	}
	lf, rf := evalBoundArithAt(a.L, b, i), evalBoundArithAt(a.R, b, i)
	switch a.Op {
	case algebra.Add:
		return lf + rf
	case algebra.Sub:
		return lf - rf
	case algebra.Mul:
		return lf * rf
	}
	return lf / rf
}

// evalCmpAt evaluates one batch-schema compiled conjunct at logical row i.
func evalCmpAt(c algebra.BoundCmp, b *Batch, i int) bool {
	l, r := c.LVal, c.RVal
	if c.LArith != nil {
		l = algebra.NewFloat(evalBoundArithAt(c.LArith, b, i))
	} else if c.LIdx >= 0 {
		l = b.value(c.LIdx, i)
	}
	if c.RArith != nil {
		r = algebra.NewFloat(evalBoundArithAt(c.RArith, b, i))
	} else if c.RIdx >= 0 {
		r = b.value(c.RIdx, i)
	}
	return opOK(c.Op, l.Compare(r))
}

// evalCNFAt evaluates a compiled CNF at logical row i: every conjunct and at
// least one alternative of every clause — BoundPred.Eval over batch values.
func evalCNFAt(cmps []algebra.BoundCmp, clauses [][]algebra.BoundCmp, b *Batch, i int) bool {
	for _, c := range cmps {
		if !evalCmpAt(c, b, i) {
			return false
		}
	}
	for _, cl := range clauses {
		any := false
		for _, c := range cl {
			if evalCmpAt(c, b, i) {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}

// batchEqualOn confirms a join key match across two batches (EqualOn over
// logical rows).
func batchEqualOn(a *Batch, ai int, ac []int, b *Batch, bi int, bc []int) bool {
	for x := range ac {
		if !a.value(ac[x], ai).Equal(b.value(bc[x], bi)) {
			return false
		}
	}
	return true
}

// batchRowEqual reports full-row equality of two logical rows of one batch.
func batchRowEqual(b *Batch, i, j int) bool {
	for k := range b.schema {
		if !b.value(k, i).Equal(b.value(k, j)) {
			return false
		}
	}
	return true
}

// evalB evaluates the side-resolved arithmetic tree over a batch row pair.
func (a *twoArith) evalB(bb *Batch, bi int, pb *Batch, pi int) float64 {
	if a.l == nil && a.r == nil {
		if a.idx < 0 {
			return a.val.AsFloat()
		}
		if a.build {
			return bb.value(a.idx, bi).AsFloat()
		}
		return pb.value(a.idx, pi).AsFloat()
	}
	lf, rf := a.l.evalB(bb, bi, pb, pi), a.r.evalB(bb, bi, pb, pi)
	switch a.op {
	case algebra.Add:
		return lf + rf
	case algebra.Sub:
		return lf - rf
	case algebra.Mul:
		return lf * rf
	}
	return lf / rf
}

// evalB evaluates one two-sided comparison over a batch row pair.
func (c twoCmp) evalB(bb *Batch, bi int, pb *Batch, pi int) bool {
	l, r := c.lv, c.rv
	if c.la != nil {
		l = algebra.NewFloat(c.la.evalB(bb, bi, pb, pi))
	} else if c.li >= 0 {
		if c.lBuild {
			l = bb.value(c.li, bi)
		} else {
			l = pb.value(c.li, pi)
		}
	}
	if c.ra != nil {
		r = algebra.NewFloat(c.ra.evalB(bb, bi, pb, pi))
	} else if c.ri >= 0 {
		if c.rBuild {
			r = bb.value(c.ri, bi)
		} else {
			r = pb.value(c.ri, pi)
		}
	}
	return opOK(c.op, l.Compare(r))
}

// evalB evaluates the two-sided residual over a batch row pair.
func (rp *residualPred) evalB(bb *Batch, bi int, pb *Batch, pi int) bool {
	for _, c := range rp.cs {
		if !c.evalB(bb, bi, pb, pi) {
			return false
		}
	}
	for _, cl := range rp.clauses {
		any := false
		for _, c := range cl {
			if c.evalB(bb, bi, pb, pi) {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Chained operator kernels.

// remapThroughProj rewrites a batch-schema compile (conjuncts + clauses,
// including arithmetic leaves) into the backing relation's layout, so the
// dense bitmap kernels of batch.go evaluate it directly over the relation's
// column vectors.
func (b *Batch) remapThroughProj(cmps []algebra.BoundCmp, clauses [][]algebra.BoundCmp) ([]algebra.BoundCmp, [][]algebra.BoundCmp) {
	if b.proj == nil {
		return cmps, clauses
	}
	f := func(i int) int { return b.proj[i] }
	one := func(c algebra.BoundCmp) algebra.BoundCmp {
		if c.LIdx >= 0 {
			c.LIdx = f(c.LIdx)
		}
		if c.RIdx >= 0 {
			c.RIdx = f(c.RIdx)
		}
		c.LArith = c.LArith.Remap(f)
		c.RArith = c.RArith.Remap(f)
		return c
	}
	oc := make([]algebra.BoundCmp, len(cmps))
	for i, c := range cmps {
		oc[i] = one(c)
	}
	var ocl [][]algebra.BoundCmp
	if len(clauses) > 0 {
		ocl = make([][]algebra.BoundCmp, len(clauses))
		for i, cl := range clauses {
			ncl := make([]algebra.BoundCmp, len(cl))
			for j, c := range cl {
				ncl[j] = one(c)
			}
			ocl[i] = ncl
		}
	}
	return oc, ocl
}

// filterSel evaluates keep over every logical row and returns the surviving
// LOGICAL indexes in order — subset() turns them into the next batch.
func (b *Batch) filterSel(par storage.Par, keep func(i int) bool) []int32 {
	par = par.Norm()
	if !par.Enabled() || b.n < storage.ParMinRows {
		out := make([]int32, 0, b.n)
		for i := 0; i < b.n; i++ {
			if keep(i) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	ranges := storage.MorselRanges(b.n, par.Partitions)
	outs := make([][]int32, len(ranges))
	forRanges(ranges, par.Workers, func(ri, lo, hi int) {
		acc := make([]int32, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if keep(i) {
				acc = append(acc, int32(i))
			}
		}
		outs[ri] = acc
	})
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([]int32, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out
}

// chainFilter applies a predicate to a batch, composing with any existing
// selection. An unfiltered relation-backed batch evaluates through the dense
// vectorized bitmap kernels (remapping the compile through its projection);
// already-selected and column-backed batches evaluate the compiled CNF
// row-at-a-time over batch values with the same Compare semantics.
func chainFilter(in *Batch, pred algebra.Pred, par storage.Par) *Batch {
	bp := pred.Bind(in.schema)
	cmps, clauses := bp.Cmps(), bp.Clauses()
	if len(cmps) == 0 && len(clauses) == 0 {
		return in
	}
	if in.rel != nil && in.sel == nil {
		rc, rcl := in.remapThroughProj(cmps, clauses)
		bm := selBitmapCmps(in.rel, rc, rcl, par)
		cnt := bm.Count()
		if cnt == in.n {
			return in
		}
		return &Batch{schema: in.schema, n: cnt, rel: in.rel, rows: in.rows, proj: in.proj, sel: bm.Indices()}
	}
	var keep func(i int) bool
	if in.rel != nil {
		rc, rcl := in.remapThroughProj(cmps, clauses)
		rbp := algebra.NewBoundPredCNF(rc, rcl)
		keep = func(i int) bool { return rbp.Eval(in.rows[in.sel[i]]) }
	} else {
		keep = func(i int) bool { return evalCNFAt(cmps, clauses, in, i) }
	}
	return in.subset(in.filterSel(par, keep))
}

// chainSelect is the chained select operator: filter, then zero-copy
// projection to the operator's target schema.
func chainSelect(in *Batch, pred algebra.Pred, target algebra.Schema, par storage.Par) *Batch {
	return chainFilter(in, pred, par).project(target, par)
}

// chainJoin is the chained hash join: it keys on batch hash columns, keeps
// build-bucket insertion order and probe order (the row join's emission
// order), confirms collisions by value, evaluates residual conjuncts
// two-sided, and emits a LAZY join-backed batch — just the two pick vectors
// over its inputs. No output value is copied here; downstream operators read
// through the picks, and the sink's Materialize performs the single gather.
func chainJoin(l, r *Batch, pred algebra.Pred, buildIsLeft bool, target algebra.Schema, par storage.Par) *Batch {
	par = par.Norm()
	ls, rs := l.schema, r.schema
	outSchema := ls.Concat(rs)
	lCols, rCols, residual := splitJoinPred(pred, ls, rs)
	if len(lCols) == 0 {
		// No equi-conjunct: fall back to the row nested loop on materialized
		// inputs (identical to the batch engine's fallback).
		lr, rr := l.Materialize(ls, par), r.Materialize(rs, par)
		return batchOf(projectToP(hashJoinPlanned(lr, rr, pred, buildIsLeft, par), target, par))
	}
	build, bCols := l, lCols
	probe, pCols := r, rCols
	if !buildIsLeft {
		build, bCols = r, rCols
		probe, pCols = l, lCols
	}
	bh := build.keyHashes(bCols, par)
	ph := probe.keyHashes(pCols, par)
	res := compileResidual(residual, pred.Clauses, outSchema, len(ls), buildIsLeft)

	buckets := make(map[uint64][]int32, build.n)
	for i := 0; i < build.n; i++ {
		h := bh[i]
		buckets[h] = append(buckets[h], int32(i))
	}
	emitRange := func(lo, hi int) (bPick, pPick []int32) {
		for j := lo; j < hi; j++ {
			bs := buckets[ph[j]]
			if len(bs) == 0 {
				continue
			}
			for _, bi := range bs {
				if !batchEqualOn(probe, j, pCols, build, int(bi), bCols) {
					continue // hash collision across distinct keys
				}
				if res != nil && !res.evalB(build, int(bi), probe, j) {
					continue
				}
				bPick = append(bPick, bi)
				pPick = append(pPick, int32(j))
			}
		}
		return bPick, pPick
	}
	var bPick, pPick []int32
	if !par.Enabled() || probe.n < storage.ParMinRows {
		bPick, pPick = emitRange(0, probe.n)
	} else {
		ranges := storage.MorselRanges(probe.n, par.Partitions)
		bOuts := make([][]int32, len(ranges))
		pOuts := make([][]int32, len(ranges))
		forRanges(ranges, par.Workers, func(ri, lo, hi int) {
			bOuts[ri], pOuts[ri] = emitRange(lo, hi)
		})
		total := 0
		for _, o := range bOuts {
			total += len(o)
		}
		bPick = make([]int32, 0, total)
		pPick = make([]int32, 0, total)
		for ri := range bOuts {
			bPick = append(bPick, bOuts[ri]...)
			pPick = append(pPick, pOuts[ri]...)
		}
	}
	out := &Batch{schema: outSchema, n: len(bPick), jlw: len(ls)}
	if buildIsLeft {
		out.jl, out.jr = build, probe
		out.jlPick, out.jrPick = bPick, pPick
	} else {
		out.jl, out.jr = probe, build
		out.jlPick, out.jrPick = pPick, bPick
	}
	return out.project(target, par)
}

// chainBuildAgg folds a batch into mergeable aggregation state straight from
// column slices — AggTable.absorbColsOne never sees a row tuple. Large
// batches scatter by group hash and build partition tables merged in
// partition order, exactly as buildAggTableB.
func chainBuildAgg(in *Batch, groupBy []algebra.ColRef, specs []algebra.AggSpec, out algebra.Schema, par storage.Par, hint int) *AggTable {
	par = par.Norm()
	if hint > in.n {
		hint = in.n
	}
	at := NewAggTableSized(in.schema, groupBy, specs, out, hint)
	if in.n == 0 {
		return at
	}
	gh := in.keyHashes(at.groupBy, par)
	keys := make([][]algebra.Value, len(at.groupBy))
	for k, c := range at.groupBy {
		keys[k] = in.column(c)
	}
	aggs := make([][]algebra.Value, len(at.aggCols))
	for s, c := range at.aggCols {
		if c >= 0 {
			aggs[s] = in.column(c)
		}
	}
	if !par.Enabled() || in.n < storage.ParMinRows {
		for i := 0; i < in.n; i++ {
			at.absorbColsOne(gh[i], i, keys, aggs, 1)
		}
		return at
	}
	gIdx := storage.ScatterByHash(gh, par.Partitions)
	tables := make([]*AggTable, par.Partitions)
	storage.ForParts(par.Partitions, par.Workers, func(p int) {
		t := NewAggTableSized(in.schema, groupBy, specs, out, hint/par.Partitions+1)
		for _, i := range gIdx[p] {
			t.absorbColsOne(gh[i], int(i), keys, aggs, 1)
		}
		tables[p] = t
	})
	at = tables[0]
	for _, t := range tables[1:] {
		at.merge(t)
	}
	return at
}

// chainAgg is the chained from-scratch aggregation: column-native state
// build, then the (small) aggregate output re-enters the pipeline as a
// relation-backed batch.
func chainAgg(in *Batch, op *dag.Op, target algebra.Schema, par storage.Par, hint int) *Batch {
	at := chainBuildAgg(in, op.GroupBy, op.Aggs, target, par, hint)
	return batchOf(projectToP(at.Rows(), target, par))
}

// chainConcat is the chained n-ary union: every part projects (zero-copy) to
// the target schema and its columns append densely, in part order — the row
// union's exact row order.
func chainConcat(parts []*Batch, target algebra.Schema, par storage.Par) *Batch {
	if len(parts) == 1 {
		return parts[0].project(target, par)
	}
	total := 0
	for _, p := range parts {
		total += p.n
	}
	cols := make([][]algebra.Value, len(target))
	for k := range cols {
		cols[k] = make([]algebra.Value, 0, total)
	}
	for _, p := range parts {
		pp := p.project(target, par)
		for k := range cols {
			cols[k] = pp.appendColumn(cols[k], k)
		}
	}
	return &Batch{schema: target, n: total, cols: cols}
}

// chainMinus is the chained multiset difference: both sides gather to rows
// (difference is a sink for its inputs) and the result re-enters the
// pipeline.
func chainMinus(l, r *Batch, target algebra.Schema, par storage.Par) *Batch {
	lr := l.Materialize(l.schema, par)
	rr := r.Materialize(r.schema, par)
	return batchOf(execMinus(lr, rr, target, par))
}

// chainDedup is the chained duplicate elimination: it keys on the full-row
// hash column, keeps first occurrences in logical order by value
// confirmation, and emits the survivors as a selection over the input batch
// — then projects to the target schema.
func chainDedup(in *Batch, target algebra.Schema, par storage.Par) *Batch {
	if in.n == 0 {
		return in.project(target, par)
	}
	all := make([]int, len(in.schema))
	for k := range all {
		all[k] = k
	}
	h := in.keyHashes(all, par)
	seen := make(map[uint64][]int32, in.n)
	firsts := make([]int32, 0, in.n)
	for i := 0; i < in.n; i++ {
		bucket := seen[h[i]]
		dup := false
		for _, prev := range bucket {
			if batchRowEqual(in, i, int(prev)) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h[i]] = append(bucket, int32(i))
		firsts = append(firsts, int32(i))
	}
	return in.subset(firsts).project(target, par)
}
