// Package exec is the in-memory execution engine: it interprets the physical
// plans produced by the volcano and diff optimizers against storage
// relations, and drives incremental view refresh (compute differentials one
// update at a time, merge them into stored results, fold deltas into base
// relations — the procedure of paper §3.2.2). Within each update step the
// differential computations are scheduled as a dependency task graph on a
// GOMAXPROCS-bounded worker pool, with optimizer-shared differentials
// computed exactly once (schedule.go); results are identical at any worker
// count.
//
// The paper's authors had no execution engine and reported estimated costs
// only (§7.1). This package exists so that maintenance plans can be executed
// and checked for exact multiset equality with recomputation.
package exec

import (
	"fmt"
	"math"

	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/storage"
)

// tupleArena amortizes output-row allocation on executor hot paths: rows are
// carved out of shared blocks instead of one make per row. Blocks grow
// geometrically from the first row's exact size (capped at 8192 values), so
// a tiny differential result does not pin a large block — carved rows escape
// into retained relations and keep their whole block reachable. Only the
// most recent row may be returned with undo.
type tupleArena struct {
	buf  []algebra.Value
	next int // capacity of the next block
}

// alloc carves a row of n values. The region may hold stale values from an
// undone row — callers must write every slot.
func (a *tupleArena) alloc(n int) algebra.Tuple {
	if cap(a.buf)-len(a.buf) < n {
		sz := a.next
		if sz < n {
			sz = n
		}
		a.buf = make([]algebra.Value, 0, sz)
		a.next = 2 * sz
		if a.next > 8192 {
			a.next = 8192
		}
	}
	row := a.buf[len(a.buf) : len(a.buf)+n : len(a.buf)+n]
	a.buf = a.buf[:len(a.buf)+n]
	return row
}

// undo releases the most recent alloc(n) (used when a row fails a residual
// predicate and never escapes).
func (a *tupleArena) undo(n int) {
	a.buf = a.buf[:len(a.buf)-n]
}

// filterRel applies a predicate, bound once against the input schema.
func filterRel(in *storage.Relation, pred algebra.Pred) *storage.Relation {
	out := storage.NewRelation(in.Schema())
	bp := pred.Bind(in.Schema())
	for _, t := range in.Rows() {
		if bp.Eval(t) {
			out.Append(t)
		}
	}
	return out
}

// projectTo reorders/subsets columns of in to match the target schema,
// resolving by qualified name. It panics if a target column is missing.
func projectTo(in *storage.Relation, target algebra.Schema) *storage.Relation {
	if schemaEqual(in.Schema(), target) {
		return in
	}
	idx := projIndexes(in.Schema(), target)
	out := storage.NewRelation(target)
	out.Reserve(in.Len())
	var arena tupleArena
	for _, t := range in.Rows() {
		row := arena.alloc(len(idx))
		for i, j := range idx {
			row[i] = t[j]
		}
		out.Append(row)
	}
	return out
}

func schemaEqual(a, b algebra.Schema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Rel != b[i].Rel || a[i].Name != b[i].Name {
			return false
		}
	}
	return true
}

// splitJoinPred separates equi-conjuncts usable as hash keys from residual
// conjuncts, given the two input schemas.
func splitJoinPred(pred algebra.Pred, ls, rs algebra.Schema) (lCols, rCols []int, residual []algebra.Cmp) {
	for _, c := range pred.Conjuncts {
		lc, lok := c.L.(algebra.ColRef)
		rc, rok := c.R.(algebra.ColRef)
		if c.Op == algebra.EQ && lok && rok {
			li, ri := ls.IndexOf(lc.QName()), rs.IndexOf(rc.QName())
			if li >= 0 && ri >= 0 {
				lCols = append(lCols, li)
				rCols = append(rCols, ri)
				continue
			}
			li, ri = ls.IndexOf(rc.QName()), rs.IndexOf(lc.QName())
			if li >= 0 && ri >= 0 {
				lCols = append(lCols, li)
				rCols = append(rCols, ri)
				continue
			}
		}
		residual = append(residual, c)
	}
	return
}

// hashJoin joins two relations under a conjunctive predicate, probing with
// precomputed column-subset hashes and confirming key equality on collision.
// The hash table is built on the smaller input (the differential side of a
// maintenance join is usually tiny) and probed with the larger; output rows
// always keep the l++r column layout. With no equi-conjunct it degrades to
// nested loops.
func hashJoin(l, r *storage.Relation, pred algebra.Pred) *storage.Relation {
	ls, rs := l.Schema(), r.Schema()
	outSchema := ls.Concat(rs)
	out := storage.NewRelation(outSchema)
	lCols, rCols, residual := splitJoinPred(pred, ls, rs)
	hasResidual := len(residual) > 0 || pred.HasClauses()
	var res algebra.BoundPred
	if hasResidual {
		res = algebra.Pred{Conjuncts: residual, Clauses: pred.Clauses}.Bind(outSchema)
	}

	var arena tupleArena
	emit := func(lt, rt algebra.Tuple) {
		row := arena.alloc(len(lt) + len(rt))
		copy(row, lt)
		copy(row[len(lt):], rt)
		if !hasResidual || res.Eval(row) {
			out.Append(row)
		} else {
			arena.undo(len(row))
		}
	}
	if len(lCols) == 0 {
		for _, lt := range l.Rows() {
			for _, rt := range r.Rows() {
				emit(lt, rt)
			}
		}
		return out
	}
	build, bCols := l, lCols
	probe, pCols := r, rCols
	buildIsLeft := true
	if r.Len() < l.Len() {
		build, bCols = r, rCols
		probe, pCols = l, lCols
		buildIsLeft = false
	}
	buckets := make(map[uint64][]algebra.Tuple, build.Len())
	for _, bt := range build.Rows() {
		h := bt.HashCols(bCols)
		buckets[h] = append(buckets[h], bt)
	}
	for _, pt := range probe.Rows() {
		for _, bt := range buckets[pt.HashCols(pCols)] {
			if !algebra.EqualOn(pt, pCols, bt, bCols) {
				continue // hash collision across distinct keys
			}
			if buildIsLeft {
				emit(bt, pt)
			} else {
				emit(pt, bt)
			}
		}
	}
	return out
}

// unionAll concatenates two compatible relations (column order of the first).
func unionAll(l, r *storage.Relation) *storage.Relation {
	out := l.Clone()
	out.InsertAll(projectTo(r, l.Schema()))
	return out
}

// minus computes multiset difference l − r.
func minus(l, r *storage.Relation) *storage.Relation {
	out := l.Clone()
	out.SubtractAll(projectTo(r, l.Schema()))
	return out
}

// dedup eliminates duplicates via the typed tuple hash, confirming equality
// on collision.
func dedup(in *storage.Relation) *storage.Relation {
	out := storage.NewRelation(in.Schema())
	seen := make(map[uint64][]algebra.Tuple, in.Len())
	for _, t := range in.Rows() {
		h := t.Hash()
		bucket := seen[h]
		dup := false
		for _, prev := range bucket {
			if prev.Equal(t) {
				dup = true
				break
			}
		}
		if !dup {
			seen[h] = append(bucket, t)
			out.Append(t)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Aggregation with mergeable per-group state.

// aggAcc is the accumulator for one aggregate spec within one group. Sum,
// count and avg are distributive and merge under deletion; min/max are exact
// under insertion only (the maintainer falls back to recomputation when a
// deletion could invalidate them — see Maintainer).
type aggAcc struct {
	sum float64
	cnt int64
	min float64
	max float64
}

// groupState is the state of one group: group key values plus one
// accumulator per aggregate spec and the group's total row count.
type groupState struct {
	keyVals algebra.Tuple
	accs    []aggAcc
	rows    int64
}

// AggTable is mergeable aggregation state: the authoritative representation
// of a materialized aggregate view. Groups are keyed by the typed hash of
// the group-by columns; the rare hash collision chains distinct key tuples
// within one bucket, disambiguated by value equality.
type AggTable struct {
	groupBy []int // input column indexes
	aggCols []int // input column indexes per spec (-1 for COUNT)
	specs   []algebra.AggSpec
	out     algebra.Schema
	groups  map[uint64][]*groupState
	n       int // live group count
}

// NewAggTable builds empty aggregation state for an aggregate operation over
// an input schema, producing the output schema out.
func NewAggTable(in algebra.Schema, groupBy []algebra.ColRef, specs []algebra.AggSpec, out algebra.Schema) *AggTable {
	return NewAggTableSized(in, groupBy, specs, out, 0)
}

// NewAggTableSized is NewAggTable with the group map pre-sized for about
// hint groups. Materialization passes the optimizer's catalog-derived
// cardinality estimate here, so bulk loads do not rehash the map as groups
// accumulate.
func NewAggTableSized(in algebra.Schema, groupBy []algebra.ColRef, specs []algebra.AggSpec, out algebra.Schema, hint int) *AggTable {
	if hint < 0 {
		hint = 0
	}
	at := &AggTable{specs: specs, out: out, groups: make(map[uint64][]*groupState, hint)}
	for _, g := range groupBy {
		j := in.IndexOf(g.QName())
		if j < 0 {
			panic(fmt.Sprintf("exec: group-by column %s missing from %s", g.QName(), in))
		}
		at.groupBy = append(at.groupBy, j)
	}
	for _, s := range specs {
		if s.Func == algebra.Count {
			at.aggCols = append(at.aggCols, -1)
			continue
		}
		j := in.IndexOf(s.Col.QName())
		if j < 0 {
			panic(fmt.Sprintf("exec: aggregate column %s missing from %s", s.Col.QName(), in))
		}
		at.aggCols = append(at.aggCols, j)
	}
	return at
}

// Absorb folds input tuples into the state with the given sign (+1 for
// inserts, −1 for deletes). It reports whether any MIN/MAX accumulator may
// have been invalidated (a deletion matching the current extremum).
func (at *AggTable) Absorb(in *storage.Relation, sign int64) (minMaxDirty bool) {
	for _, t := range in.Rows() {
		if at.absorbOne(t.HashCols(at.groupBy), t, sign) {
			minMaxDirty = true
		}
	}
	return minMaxDirty
}

// absorbOne folds a single tuple (with its precomputed group-key hash) into
// the state; the partition-parallel build uses it to avoid rehashing.
func (at *AggTable) absorbOne(h uint64, t algebra.Tuple, sign int64) (minMaxDirty bool) {
	chain := at.groups[h]
	var g *groupState
	gi := -1
	for i, cand := range chain {
		if cand.keyMatches(t, at.groupBy) {
			g, gi = cand, i
			break
		}
	}
	if g == nil {
		g = &groupState{accs: make([]aggAcc, len(at.specs))}
		g.keyVals = make(algebra.Tuple, len(at.groupBy))
		for i, j := range at.groupBy {
			g.keyVals[i] = t[j]
		}
		for i := range g.accs {
			g.accs[i].min = math.Inf(1)
			g.accs[i].max = math.Inf(-1)
		}
		at.groups[h] = append(chain, g)
		gi = len(chain)
		at.n++
	}
	g.rows += sign
	for i, s := range at.specs {
		acc := &g.accs[i]
		var v float64
		if at.aggCols[i] >= 0 {
			v = t[at.aggCols[i]].AsFloat()
		}
		switch s.Func {
		case algebra.Count:
			acc.cnt += sign
		case algebra.Sum, algebra.Avg:
			acc.sum += float64(sign) * v
			acc.cnt += sign
		case algebra.Min:
			if sign > 0 {
				if v < acc.min {
					acc.min = v
				}
			} else if v <= acc.min {
				minMaxDirty = true
			}
			acc.cnt += sign
		case algebra.Max:
			if sign > 0 {
				if v > acc.max {
					acc.max = v
				}
			} else if v >= acc.max {
				minMaxDirty = true
			}
			acc.cnt += sign
		}
	}
	if g.rows <= 0 {
		chain := at.groups[h]
		chain[gi] = chain[len(chain)-1]
		chain = chain[:len(chain)-1]
		if len(chain) == 0 {
			delete(at.groups, h)
		} else {
			at.groups[h] = chain
		}
		at.n--
	}
	return minMaxDirty
}

// absorbColsOne is absorbOne over a column-major input: keys[k][i] is the
// k-th group-by column and aggs[s][i] the s-th spec's source column (nil for
// COUNT) at logical row i. The chained pipeline folds batches into the state
// through it without ever building a row tuple; every state transition
// matches absorbOne's exactly.
func (at *AggTable) absorbColsOne(h uint64, i int, keys, aggs [][]algebra.Value, sign int64) (minMaxDirty bool) {
	chain := at.groups[h]
	var g *groupState
	gi := -1
	for ci, cand := range chain {
		if cand.keyMatchesCols(keys, i) {
			g, gi = cand, ci
			break
		}
	}
	if g == nil {
		g = &groupState{accs: make([]aggAcc, len(at.specs))}
		g.keyVals = make(algebra.Tuple, len(keys))
		for k := range keys {
			g.keyVals[k] = keys[k][i]
		}
		for s := range g.accs {
			g.accs[s].min = math.Inf(1)
			g.accs[s].max = math.Inf(-1)
		}
		at.groups[h] = append(chain, g)
		gi = len(chain)
		at.n++
	}
	g.rows += sign
	for s, spec := range at.specs {
		acc := &g.accs[s]
		var v float64
		if aggs[s] != nil {
			v = aggs[s][i].AsFloat()
		}
		switch spec.Func {
		case algebra.Count:
			acc.cnt += sign
		case algebra.Sum, algebra.Avg:
			acc.sum += float64(sign) * v
			acc.cnt += sign
		case algebra.Min:
			if sign > 0 {
				if v < acc.min {
					acc.min = v
				}
			} else if v <= acc.min {
				minMaxDirty = true
			}
			acc.cnt += sign
		case algebra.Max:
			if sign > 0 {
				if v > acc.max {
					acc.max = v
				}
			} else if v >= acc.max {
				minMaxDirty = true
			}
			acc.cnt += sign
		}
	}
	if g.rows <= 0 {
		chain := at.groups[h]
		chain[gi] = chain[len(chain)-1]
		chain = chain[:len(chain)-1]
		if len(chain) == 0 {
			delete(at.groups, h)
		} else {
			at.groups[h] = chain
		}
		at.n--
	}
	return minMaxDirty
}

// keyMatchesCols reports whether the group's key equals the group-by columns
// at logical row i of a column-major input.
func (g *groupState) keyMatchesCols(keys [][]algebra.Value, i int) bool {
	for k := range keys {
		if !g.keyVals[k].Equal(keys[k][i]) {
			return false
		}
	}
	return true
}

// merge adopts every group of another table built over the same operation.
// The caller guarantees group-key disjointness (hash-partitioned inputs:
// partitions own disjoint hash residues), so chains transfer without key
// comparisons and bucket keys cannot collide across tables.
func (at *AggTable) merge(o *AggTable) {
	for h, chain := range o.groups {
		at.groups[h] = append(at.groups[h], chain...)
	}
	at.n += o.n
}

// keyMatches reports whether the group's key equals the group-by columns of
// an input tuple.
func (g *groupState) keyMatches(t algebra.Tuple, groupBy []int) bool {
	for i, j := range groupBy {
		if !g.keyVals[i].Equal(t[j]) {
			return false
		}
	}
	return true
}

// Rows materializes the current state as a relation in the output schema.
func (at *AggTable) Rows() *storage.Relation {
	out := storage.NewRelation(at.out)
	out.Reserve(at.n)
	var arena tupleArena
	width := len(at.out)
	for _, chain := range at.groups {
		for _, g := range chain {
			row := arena.alloc(width)[:0]
			row = append(row, g.keyVals...)
			for i, s := range at.specs {
				acc := g.accs[i]
				switch s.Func {
				case algebra.Count:
					row = append(row, algebra.NewInt(acc.cnt))
				case algebra.Sum:
					row = append(row, algebra.NewFloat(acc.sum))
				case algebra.Avg:
					if acc.cnt == 0 {
						row = append(row, algebra.NewFloat(0))
					} else {
						row = append(row, algebra.NewFloat(acc.sum/float64(acc.cnt)))
					}
				case algebra.Min:
					row = append(row, algebra.NewFloat(acc.min))
				case algebra.Max:
					row = append(row, algebra.NewFloat(acc.max))
				}
			}
			out.Append(row)
		}
	}
	return out
}

// aggregate evaluates an aggregate operation from scratch.
func aggregate(in *storage.Relation, op *dag.Op, out algebra.Schema) *storage.Relation {
	at := NewAggTable(in.Schema(), op.GroupBy, op.Aggs, out)
	at.Absorb(in, 1)
	return at.Rows()
}
