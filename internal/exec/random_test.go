package exec

// Randomized maintenance harness: generate random view shapes over the test
// schema, random update batches, refresh incrementally, and verify exact
// multiset equality with recomputation. This is the strongest correctness
// evidence in the repository — the paper could not perform this check at
// all ("we are unable [to] get actual numbers" §7.1).

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/diff"
	"repro/internal/storage"
)

// randomView builds a random view over orders/customer/nation: a join chain
// of 1–3 relations with optional local predicates and an optional aggregate
// on top.
func randomView(f *fixture, rng *rand.Rand) algebra.Node {
	var n algebra.Node = algebra.NewScan(f.cat, "orders")
	joined := []string{"orders"}
	if rng.Intn(2) == 0 {
		n = algebra.NewJoin(algebra.And(algebra.Eq("orders.o_cust", "customer.c_key")),
			n, algebra.NewScan(f.cat, "customer"))
		joined = append(joined, "customer")
		if rng.Intn(2) == 0 {
			n = algebra.NewJoin(algebra.And(algebra.Eq("customer.c_nation", "nation.n_key")),
				n, algebra.NewScan(f.cat, "nation"))
			joined = append(joined, "nation")
		}
	}
	// Optional local predicates.
	var conj []algebra.Cmp
	if rng.Intn(2) == 0 {
		conj = append(conj, algebra.CmpConst("orders.o_price", algebra.LT,
			algebra.NewFloat(float64(20+rng.Intn(70)))))
	}
	if len(joined) > 1 && rng.Intn(3) == 0 {
		conj = append(conj, algebra.CmpConst("customer.c_nation", algebra.NE,
			algebra.NewInt(int64(1+rng.Intn(5)))))
	}
	if len(conj) > 0 {
		n = algebra.NewSelect(algebra.Pred{Conjuncts: conj}, n)
	}
	// Optional aggregate.
	if rng.Intn(2) == 0 {
		group := algebra.C("orders.o_cust")
		if len(joined) > 1 {
			group = algebra.C("customer.c_nation")
		}
		specs := []algebra.AggSpec{{Func: algebra.Count}}
		switch rng.Intn(3) {
		case 0:
			specs = append(specs, algebra.AggSpec{Func: algebra.Sum, Col: algebra.C("orders.o_price")})
		case 1:
			specs = append(specs, algebra.AggSpec{Func: algebra.Avg, Col: algebra.C("orders.o_price")})
		}
		n = algebra.NewAggregate([]algebra.ColRef{group}, specs, n)
	}
	return n
}

func TestRandomizedMaintenanceMatchesRecompute(t *testing.T) {
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		f := newFixture(int64(trial))
		d := dag.New(f.cat)
		nViews := 1 + rng.Intn(3)
		var roots []*dag.Equiv
		for v := 0; v < nViews; v++ {
			roots = append(roots, d.AddQuery("v", randomView(f, rng)))
		}
		d.ApplySubsumption()

		updRels := []string{"orders"}
		if rng.Intn(2) == 0 {
			updRels = append(updRels, "customer")
		}
		u := diff.UniformPercent(f.cat, updRels, float64(5+rng.Intn(30)))
		en := diff.NewEngine(d, cost.NewModel(cost.Default()), u)

		ms := diff.NewMatState()
		ex := NewExecutor(f.db)
		seen := map[int]bool{}
		for _, r := range roots {
			if !seen[r.ID] {
				seen[r.ID] = true
				ms.Fulls.Full[r.ID] = true
				ex.MaterializeNode(r)
			}
		}
		// Randomly materialize one extra subexpression and one differential.
		if rng.Intn(2) == 0 {
			for _, e := range d.Equivs {
				if !e.IsTable && !seen[e.ID] && len(e.Tables) >= 2 && rng.Intn(3) == 0 {
					ms.Fulls.Full[e.ID] = true
					ex.MaterializeNode(e)
					seen[e.ID] = true
					break
				}
			}
		}
		if rng.Intn(2) == 0 {
			for _, e := range d.Equivs {
				if !e.IsTable && e.DependsOn("orders") && rng.Intn(3) == 0 &&
					e.Ops[0].Kind != dag.OpAggregate {
					ms.Diffs[diff.DiffKey{EquivID: e.ID, Update: 1}] = true
					break
				}
			}
		}

		ev := en.NewEval(ms)
		mt := NewMaintainer(ex, en, ev)

		var nk int64 = 100000 * int64(trial+1)
		for cycle := 0; cycle < 2; cycle++ {
			for _, rel := range updRels {
				f.logUpdates(rel, 5+rng.Intn(20), &nk)
			}
			mt.Refresh()
			for id := range ms.Fulls.Full {
				e := d.Equivs[id]
				got := ex.Mat[id]
				want := ex.EvalNode(e)
				if !storage.EqualMultiset(got, want) {
					t.Fatalf("trial %d cycle %d: e%d (%s) diverged: %d vs %d rows",
						trial, cycle, id, e.Key, got.Len(), want.Len())
				}
			}
		}
	}
}
