package exec

// Partition-parallel operator implementations. Every operator here is a
// drop-in twin of a sequential operator in ops.go whose output is
// byte-identical — same rows, same order — at ANY partition and worker
// count, which is what lets refresh and serving switch between sequential
// and parallel execution freely (the PR-2/PR-3 determinism contract).
//
// Two partitioning disciplines are used, chosen per operator:
//
//   - Morsel (range) partitioning for order-preserving row-at-a-time
//     operators (filter, project, the nested-loop fallback): the input is
//     split into contiguous ranges, ranges are claimed by workers off an
//     atomic counter, and the per-range outputs are concatenated in range
//     order — trivially reproducing the sequential output.
//
//   - Hash co-partitioning for keyed operators (hash join, dedup, minus,
//     aggregation): rows are assigned to partitions by key hash, so all
//     rows that can interact land in the same partition and partitions
//     proceed with no cross-partition probes. Per-partition outputs are
//     merged back in the original input order: each partition emits rows
//     tagged with (or ordered by) their source row index, and a cursor
//     merge walks the source order once — every partition's output is
//     already ascending in source index, so the merge is linear.
//
// Each operator falls back to its sequential twin below storage.ParMinRows rows or
// when the configuration is sequential; the fallback changes nothing
// observable, by the identity above.

import (
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/storage"
)

// broadcastMaxBuild is the build-side size up to which a parallel hash join
// broadcasts one shared read-only table to morsel workers instead of
// co-partitioning both sides: building a map this small is microseconds of
// serial work and it fits cache, so splitting it buys nothing while the
// probe side still parallelizes fully. Larger builds co-partition (the
// build phase itself then needs the parallelism). A variable so tests can
// pin either path.
var broadcastMaxBuild = 8192

// forRanges runs body over every morsel range on par.Workers goroutines,
// ranges claimed off an atomic counter.
func forRanges(ranges [][2]int, workers int, body func(ri, lo, hi int)) {
	if workers > len(ranges) {
		workers = len(ranges)
	}
	var next atomic.Int64
	storage.RunWorkers(workers, func(int) {
		for {
			ri := int(next.Add(1)) - 1
			if ri >= len(ranges) {
				return
			}
			body(ri, ranges[ri][0], ranges[ri][1])
		}
	})
}

// concatRanges assembles per-range outputs into one relation, in range
// order.
func concatRanges(schema algebra.Schema, outs [][]algebra.Tuple) *storage.Relation {
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := storage.NewRelation(schema)
	out.Reserve(total)
	for _, o := range outs {
		out.AppendAll(o)
	}
	return out
}

// filterRelP is filterRel with morsel-parallel evaluation.
func filterRelP(in *storage.Relation, pred algebra.Pred, par storage.Par) *storage.Relation {
	par = par.Norm()
	if !par.Enabled() || in.Len() < storage.ParMinRows {
		return filterRel(in, pred)
	}
	bp := pred.Bind(in.Schema()) // read-only once bound: shared by workers
	rows := in.Rows()
	ranges := storage.MorselRanges(len(rows), par.Partitions)
	outs := make([][]algebra.Tuple, len(ranges))
	forRanges(ranges, par.Workers, func(ri, lo, hi int) {
		var keep []algebra.Tuple
		for _, t := range rows[lo:hi] {
			if bp.Eval(t) {
				keep = append(keep, t)
			}
		}
		outs[ri] = keep
	})
	return concatRanges(in.Schema(), outs)
}

// projIndexes resolves the target schema's columns in the input schema
// (shared by projectTo and projectToP).
func projIndexes(in algebra.Schema, target algebra.Schema) []int {
	idx := make([]int, len(target))
	for i, c := range target {
		j := in.IndexOf(c.QName())
		if j < 0 {
			panic("exec: column " + c.QName() + " missing from " + in.String())
		}
		idx[i] = j
	}
	return idx
}

// projectToP is projectTo with morsel-parallel column movement.
func projectToP(in *storage.Relation, target algebra.Schema, par storage.Par) *storage.Relation {
	if schemaEqual(in.Schema(), target) {
		return in
	}
	par = par.Norm()
	if !par.Enabled() || in.Len() < storage.ParMinRows {
		return projectTo(in, target)
	}
	idx := projIndexes(in.Schema(), target)
	rows := in.Rows()
	ranges := storage.MorselRanges(len(rows), par.Partitions)
	outs := make([][]algebra.Tuple, len(ranges))
	forRanges(ranges, par.Workers, func(ri, lo, hi int) {
		var arena tupleArena
		acc := make([]algebra.Tuple, 0, hi-lo)
		for _, t := range rows[lo:hi] {
			row := arena.alloc(len(idx))
			for i, j := range idx {
				row[i] = t[j]
			}
			acc = append(acc, row)
		}
		outs[ri] = acc
	})
	return concatRanges(target, outs)
}

// colHashesP computes every row's column-subset hash, morsel-parallel.
func colHashesP(r *storage.Relation, cols []int, par storage.Par) []uint64 {
	rows := r.Rows()
	hs := make([]uint64, len(rows))
	forRanges(storage.MorselRanges(len(rows), par.Partitions), par.Workers,
		func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				hs[i] = rows[i].HashCols(cols)
			}
		})
	return hs
}

// hashJoinP is hashJoin with partition-wise build and probe: both inputs are
// co-partitioned on the join-key hash (partition = hash mod P), partition p
// builds a table over its build rows and probes it with its probe rows only
// — no cross-partition probes — and the per-partition outputs merge back in
// original probe order. Because all rows with equal key hash share a
// partition and relative order is preserved within each partition, every
// probe row meets exactly the bucket it would meet sequentially, so the
// merged output is byte-identical to hashJoin at any partition count.
func hashJoinP(l, r *storage.Relation, pred algebra.Pred, par storage.Par) *storage.Relation {
	par = par.Norm()
	if !par.Enabled() || l.Len()+r.Len() < storage.ParMinRows {
		return hashJoin(l, r, pred)
	}
	ls, rs := l.Schema(), r.Schema()
	outSchema := ls.Concat(rs)
	lCols, rCols, residual := splitJoinPred(pred, ls, rs)
	hasResidual := len(residual) > 0 || pred.HasClauses()
	var res algebra.BoundPred
	if hasResidual {
		res = algebra.Pred{Conjuncts: residual, Clauses: pred.Clauses}.Bind(outSchema)
	}
	if len(lCols) == 0 {
		return nestedLoopP(l, r, res, hasResidual, outSchema, par)
	}
	// Build on the smaller input — the same rule as hashJoin, so the emit
	// order per probe row matches the sequential join exactly.
	return hashJoinOriented(l, r, lCols, rCols, res, hasResidual, outSchema,
		!(r.Len() < l.Len()), par)
}

// hashJoinPlanned is the plan-driven join used by Executor.Run: the build
// side comes from the optimizer's row estimates (BuildLeftFromPlan) instead
// of the inputs' actual sizes. Committing at plan time is what lets a
// distributed executor (internal/shard) choose the identical side without
// materializing the probe input first — the shard lowering and this function
// share the same rule, so scattered and single-node execution emit rows in
// the same order.
func hashJoinPlanned(l, r *storage.Relation, pred algebra.Pred, buildIsLeft bool, par storage.Par) *storage.Relation {
	par = par.Norm()
	ls, rs := l.Schema(), r.Schema()
	outSchema := ls.Concat(rs)
	lCols, rCols, residual := splitJoinPred(pred, ls, rs)
	hasResidual := len(residual) > 0 || pred.HasClauses()
	var res algebra.BoundPred
	if hasResidual {
		res = algebra.Pred{Conjuncts: residual, Clauses: pred.Clauses}.Bind(outSchema)
	}
	if len(lCols) == 0 {
		// Nested loops are orientation-free: the outer side is always l.
		if !par.Enabled() || l.Len()+r.Len() < storage.ParMinRows {
			return hashJoin(l, r, pred)
		}
		return nestedLoopP(l, r, res, hasResidual, outSchema, par)
	}
	return hashJoinOriented(l, r, lCols, rCols, res, hasResidual, outSchema, buildIsLeft, par)
}

// hashJoinOriented is the shared keyed-join core with the build side fixed
// by the caller. Small inputs and small builds go through the broadcast
// path, which with one morsel range is exactly the sequential algorithm, so
// output order depends only on the orientation — never on the path taken.
func hashJoinOriented(l, r *storage.Relation, lCols, rCols []int,
	res algebra.BoundPred, hasResidual bool, outSchema algebra.Schema,
	buildIsLeft bool, par storage.Par) *storage.Relation {
	build, bCols := l, lCols
	probe, pCols := r, rCols
	if !buildIsLeft {
		build, bCols = r, rCols
		probe, pCols = l, lCols
	}
	if !par.Enabled() || l.Len()+r.Len() < storage.ParMinRows || build.Len() <= broadcastMaxBuild {
		// Broadcast fast path for the delta-join shape (small build side,
		// large probe side — the common case in differential maintenance and
		// most served queries): build the one small table sequentially and
		// morsel-partition the probe side over it. Co-partitioning both
		// sides would spend two full passes plus a merge on the probe side
		// only to split a table that costs nothing to share; morsel outputs
		// concatenate in range order, so the result is still byte-identical
		// to the sequential join.
		return broadcastJoinP(build, bCols, probe, pCols, buildIsLeft,
			res, hasResidual, outSchema, par)
	}
	P := uint64(par.Partitions)
	bh := colHashesP(build, bCols, par)
	ph := colHashesP(probe, pCols, par)
	bIdx := storage.ScatterByHash(bh, par.Partitions)
	pIdx := storage.ScatterByHash(ph, par.Partitions)

	bRows, pRows := build.Rows(), probe.Rows()
	builds := make([]map[uint64][]algebra.Tuple, par.Partitions)
	storage.ForParts(par.Partitions, par.Workers, func(p int) {
		m := make(map[uint64][]algebra.Tuple, len(bIdx[p]))
		for _, i := range bIdx[p] {
			h := bh[i]
			m[h] = append(m[h], bRows[i])
		}
		builds[p] = m
	})

	type joinOut struct {
		rows []algebra.Tuple
		src  []int32 // ascending probe row index per output row
	}
	pouts := make([]joinOut, par.Partitions)
	storage.ForParts(par.Partitions, par.Workers, func(p int) {
		var arena tupleArena
		var po joinOut
		m := builds[p]
		for _, j := range pIdx[p] {
			h := ph[j]
			pt := pRows[j]
			for _, bt := range m[h] {
				if !algebra.EqualOn(pt, pCols, bt, bCols) {
					continue // hash collision across distinct keys
				}
				lt, rt := bt, pt
				if !buildIsLeft {
					lt, rt = pt, bt
				}
				row := arena.alloc(len(lt) + len(rt))
				copy(row, lt)
				copy(row[len(lt):], rt)
				if hasResidual && !res.Eval(row) {
					arena.undo(len(row))
					continue
				}
				po.rows = append(po.rows, row)
				po.src = append(po.src, int32(j))
			}
		}
		pouts[p] = po
	})

	// Cursor merge back to probe order: partition outputs are ascending in
	// src, so one pass over the probe rows drains them in order.
	total := 0
	for i := range pouts {
		total += len(pouts[i].rows)
	}
	out := storage.NewRelation(outSchema)
	out.Reserve(total)
	cur := make([]int, par.Partitions)
	for j := range ph {
		p := int(ph[j] % P)
		po := &pouts[p]
		c := cur[p]
		for c < len(po.src) && po.src[c] == int32(j) {
			out.Append(po.rows[c])
			c++
		}
		cur[p] = c
	}
	return out
}

// broadcastJoinP shares one sequentially built table of the small build
// side across morsel workers scanning the probe side. Emit order per probe
// row equals hashJoin's (same bucket construction); ranges concatenate in
// probe order.
func broadcastJoinP(build *storage.Relation, bCols []int, probe *storage.Relation, pCols []int,
	buildIsLeft bool, res algebra.BoundPred, hasResidual bool,
	outSchema algebra.Schema, par storage.Par) *storage.Relation {
	buckets := make(map[uint64][]algebra.Tuple, build.Len())
	for _, bt := range build.Rows() {
		h := bt.HashCols(bCols)
		buckets[h] = append(buckets[h], bt)
	}
	pRows := probe.Rows()
	ranges := storage.MorselRanges(len(pRows), par.Partitions)
	outs := make([][]algebra.Tuple, len(ranges))
	forRanges(ranges, par.Workers, func(ri, lo, hi int) {
		var arena tupleArena
		var acc []algebra.Tuple
		for _, pt := range pRows[lo:hi] {
			for _, bt := range buckets[pt.HashCols(pCols)] {
				if !algebra.EqualOn(pt, pCols, bt, bCols) {
					continue // hash collision across distinct keys
				}
				lt, rt := bt, pt
				if !buildIsLeft {
					lt, rt = pt, bt
				}
				row := arena.alloc(len(lt) + len(rt))
				copy(row, lt)
				copy(row[len(lt):], rt)
				if hasResidual && !res.Eval(row) {
					arena.undo(len(row))
					continue
				}
				acc = append(acc, row)
			}
		}
		outs[ri] = acc
	})
	return concatRanges(outSchema, outs)
}

// nestedLoopP is the no-equi-conjunct fallback: morsel-parallel over the
// outer input, full inner per range, concatenated in range order (identical
// to the sequential nested loop).
func nestedLoopP(l, r *storage.Relation, res algebra.BoundPred, hasResidual bool, outSchema algebra.Schema, par storage.Par) *storage.Relation {
	lRows, rRows := l.Rows(), r.Rows()
	ranges := storage.MorselRanges(len(lRows), par.Partitions)
	outs := make([][]algebra.Tuple, len(ranges))
	forRanges(ranges, par.Workers, func(ri, lo, hi int) {
		var arena tupleArena
		var acc []algebra.Tuple
		for _, lt := range lRows[lo:hi] {
			for _, rt := range rRows {
				row := arena.alloc(len(lt) + len(rt))
				copy(row, lt)
				copy(row[len(lt):], rt)
				if hasResidual && !res.Eval(row) {
					arena.undo(len(row))
					continue
				}
				acc = append(acc, row)
			}
		}
		outs[ri] = acc
	})
	return concatRanges(outSchema, outs)
}

// dedupP is dedup over the relation's hash-partition view: duplicates of a
// tuple share its partition, so each partition marks its first occurrences
// independently in a shared keep mask (disjoint indexes — no locking), and
// one ordered pass emits the survivors. Byte-identical to dedup at any
// partition count.
func dedupP(in *storage.Relation, par storage.Par) *storage.Relation {
	par = par.Norm()
	if !par.Enabled() || in.Len() < storage.ParMinRows {
		return dedup(in)
	}
	pv := in.PartView(par)
	rows := in.Rows()
	keep := make([]bool, len(rows))
	storage.ForParts(par.Partitions, par.Workers, func(p int) {
		ids := pv.Rows(p)
		seen := make(map[uint64][]algebra.Tuple, len(ids))
		for _, i := range ids {
			t := rows[i]
			h := pv.Hash(int(i))
			bucket := seen[h]
			dup := false
			for _, prev := range bucket {
				if prev.Equal(t) {
					dup = true
					break
				}
			}
			if !dup {
				seen[h] = append(bucket, t)
				keep[i] = true
			}
		}
	})
	out := storage.NewRelation(in.Schema())
	for i, t := range rows {
		if keep[i] {
			out.Append(t)
		}
	}
	return out
}

// minusP is multiset difference with partition-parallel matching (see
// storage.ParMinusCOW). The output rows alias l rather than deep-copying it
// as minus does; tuples are immutable throughout the engine, so the results
// are interchangeable.
func minusP(l, r *storage.Relation, par storage.Par) *storage.Relation {
	par = par.Norm()
	if !par.Enabled() || l.Len() < storage.ParMinRows {
		return minus(l, r)
	}
	return storage.ParMinusCOW(l, projectToP(r, l.Schema(), par), par)
}

// unionAllP concatenates two compatible relations. Like minusP it skips the
// defensive deep copy of the sequential twin; the rows are identical.
func unionAllP(l, r *storage.Relation, par storage.Par) *storage.Relation {
	par = par.Norm()
	if !par.Enabled() || l.Len()+r.Len() < storage.ParMinRows {
		return unionAll(l, r)
	}
	out := storage.NewRelation(l.Schema())
	out.Reserve(l.Len() + r.Len())
	out.AppendAll(l.Rows())
	out.AppendAll(projectToP(r, l.Schema(), par).Rows())
	return out
}

// buildAggTableP computes mergeable aggregation state with partition-wise
// partial tables: rows are partitioned on the group-key hash, each partition
// absorbs its rows into a private AggTable, and the partials merge in fixed
// partition order. Group keys are disjoint across partitions (same key ⇒
// same hash ⇒ same partition), so the merge is pure adoption; the final
// state equals the sequential build's.
func buildAggTableP(in *storage.Relation, groupBy []algebra.ColRef, specs []algebra.AggSpec, out algebra.Schema, par storage.Par, hint int) *AggTable {
	par = par.Norm()
	// The hint is an optimizer estimate and can be wildly high (cardinality
	// products); there can never be more groups than input rows, so clamp
	// before it reaches a map pre-size.
	if hint > in.Len() {
		hint = in.Len()
	}
	if !par.Enabled() || in.Len() < storage.ParMinRows {
		at := NewAggTableSized(in.Schema(), groupBy, specs, out, hint)
		at.Absorb(in, 1)
		return at
	}
	rows := in.Rows()
	proto := NewAggTableSized(in.Schema(), groupBy, specs, out, 0)
	gh := make([]uint64, len(rows))
	forRanges(storage.MorselRanges(len(rows), par.Partitions), par.Workers,
		func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				gh[i] = rows[i].HashCols(proto.groupBy)
			}
		})
	gIdx := storage.ScatterByHash(gh, par.Partitions)
	tables := make([]*AggTable, par.Partitions)
	storage.ForParts(par.Partitions, par.Workers, func(p int) {
		t := NewAggTableSized(in.Schema(), groupBy, specs, out, hint/par.Partitions+1)
		for _, i := range gIdx[p] {
			t.absorbOne(gh[i], rows[i], 1)
		}
		tables[p] = t
	})
	at := tables[0]
	for _, t := range tables[1:] {
		at.merge(t)
	}
	return at
}

// aggregateP evaluates an aggregate operation from scratch with
// partition-wise partial tables. Output rows are the same set as the
// sequential aggregate (group iteration order is map order in both).
func aggregateP(in *storage.Relation, op *dag.Op, out algebra.Schema, par storage.Par, hint int) *storage.Relation {
	return buildAggTableP(in, op.GroupBy, op.Aggs, out, par, hint).Rows()
}
