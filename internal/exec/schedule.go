package exec

// Concurrent DAG-scheduled refresh: within one update step, the differential
// of every maintained result is an independent computation except where the
// optimizer chose to share a temporarily materialized differential. This
// file derives, from the chosen plans, a task graph whose nodes are
// per-result differential computations and whose edges are the reuse
// dependencies (diff.DiffPlan.ReusedDeps) — always pointing strictly
// downward in the AND-OR DAG, so the task graph inherits its acyclicity —
// and schedules it topologically onto a GOMAXPROCS-bounded worker pool.
// Shared differentials are computed exactly once and published through
// storage.Shared write-once cells.
//
// Determinism: during phase 1 every task reads only pre-step state (base
// relations, deltas, materialized results) and published dependency
// results, all of which are fixed, so each task's output relation is
// byte-identical at any worker count; the merge phase then applies results
// in ascending equivalence-node order on the caller's goroutine. Refresh
// output is therefore independent of scheduling, and identical to the
// workers=1 run.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/diff"
	"repro/internal/storage"
)

// diffTask is one node of the step's task graph: the computation of a
// single differential result δ(equiv, update).
type diffTask struct {
	key  diff.DiffKey
	plan *diff.DiffPlan // compute plan (never a reuse access plan)
	// deps are the tasks whose published results this plan reads at its
	// Reused leaves; dependents is the reverse adjacency.
	deps       []*diffTask
	dependents []*diffTask
	// pending counts unmet dependencies; a task becomes ready at zero.
	pending atomic.Int32
	// out publishes the computed differential to dependent tasks and to the
	// merge phase.
	out storage.Shared
}

// stepRun is the task graph of one update step plus the shared execution
// state the workers interpret plans against.
type stepRun struct {
	mt    *Maintainer
	tasks map[diff.DiffKey]*diffTask
	// order lists tasks in a deterministic topological order (dependencies
	// first); it fixes the workers=1 execution order.
	order []*diffTask
}

func newStepRun(mt *Maintainer) *stepRun {
	return &stepRun{mt: mt, tasks: make(map[diff.DiffKey]*diffTask)}
}

// taskFor returns the task computing the differential that the given access
// plan reads — for a reuse plan, the task of the reused key; for a compute
// plan, the task that runs it — creating it (and, recursively, its
// dependencies) on first request. Creation runs on the planning goroutine
// only; it warms the Eval memo so that workers interpret plans without ever
// touching it.
func (sr *stepRun) taskFor(p *diff.DiffPlan) *diffTask {
	return sr.taskByKey(diff.DiffKey{EquivID: p.E.ID, Update: p.Update})
}

func (sr *stepRun) taskByKey(k diff.DiffKey) *diffTask {
	if t, ok := sr.tasks[k]; ok {
		return t
	}
	e := sr.mt.En.D.Equivs[k.EquivID]
	plan := sr.mt.Ev.DiffPlan(e, k.Update)
	if plan.Empty {
		panic(fmt.Sprintf("exec: scheduled task for empty differential δ%d(e%d)", k.Update, k.EquivID))
	}
	t := &diffTask{key: k, plan: plan}
	sr.tasks[k] = t
	for _, dk := range dedupKeys(plan.ReusedDeps(nil)) {
		// A reuse edge must point strictly downward in the AND-OR DAG;
		// anything else would make the task graph cyclic. The descendant
		// sets are cached on the Maintainer (plans are fixed across steps).
		if dk.EquivID == k.EquivID || !sr.mt.descendants(e)[dk.EquivID] {
			panic(fmt.Sprintf("exec: δ%d(e%d) reuses δ%d(e%d), which is not a strict descendant",
				k.Update, k.EquivID, dk.Update, dk.EquivID))
		}
		dt := sr.taskByKey(dk)
		t.deps = append(t.deps, dt)
		dt.dependents = append(dt.dependents, t)
	}
	t.pending.Store(int32(len(t.deps)))
	sr.order = append(sr.order, t)
	return t
}

// dedupKeys removes duplicate keys, keeping first-occurrence order.
func dedupKeys(keys []diff.DiffKey) []diff.DiffKey {
	if len(keys) < 2 {
		return keys
	}
	seen := make(map[diff.DiffKey]bool, len(keys))
	out := keys[:0]
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// run executes every task, bounded by the given worker count (0 or less
// selects runtime.GOMAXPROCS(0)). workers=1 runs the whole graph on the
// calling goroutine in topological order — the degenerate sequential case,
// with sequential panic semantics.
func (sr *stepRun) run(workers int) {
	n := len(sr.order)
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Seed the ready queue with dependency-free tasks, preserving the
	// deterministic topological order. Capacity n: every task is enqueued
	// exactly once, so sends never block.
	ready := make(chan *diffTask, n)
	for _, t := range sr.order {
		if t.pending.Load() == 0 {
			ready <- t
		}
	}

	if workers == 1 {
		for done := 0; done < n; done++ {
			select {
			case t := <-ready:
				sr.runTask(t, ready)
			default:
				panic("exec: refresh task graph deadlocked (cycle?)")
			}
		}
		return
	}

	var remaining atomic.Int32
	remaining.Store(int32(n))
	// Workers recover panics so the pool always drains and shuts down
	// cleanly; the first panic value is re-raised on the caller's goroutine
	// to preserve the sequential failure contract. A panicked task leaves
	// its result unpublished, so dependents fail fast when they read it —
	// those secondary panics are swallowed in favor of the first.
	var (
		panicMu  sync.Mutex
		panicVal interface{}
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ready {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicVal == nil {
								panicVal = r
							}
							panicMu.Unlock()
						}
					}()
					sr.runTask(t, nil)
				}()
				for _, d := range t.dependents {
					if d.pending.Add(-1) == 0 {
						ready <- d
					}
				}
				if remaining.Add(-1) == 0 {
					// Every task has run, so every send has happened:
					// closing is safe and releases the blocked workers.
					close(ready)
				}
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// runTask computes and publishes one differential. In the workers=1 path
// the caller passes the ready queue and dependents are enqueued inline;
// the pool path passes nil and handles dependents itself.
func (sr *stepRun) runTask(t *diffTask, ready chan *diffTask) {
	t.out.Publish(func() *storage.Relation { return sr.exec(t.plan) })
	if ready != nil {
		for _, d := range t.dependents {
			if d.pending.Add(-1) == 0 {
				ready <- d
			}
		}
	}
}

// result returns a task's published differential, panicking if the task has
// not run — a scheduling bug, since dependencies are ordered before
// dependents.
func (t *diffTask) result() *storage.Relation {
	r := t.out.Get()
	if r == nil {
		panic(fmt.Sprintf("exec: δ%d(e%d) read before it was published", t.key.Update, t.key.EquivID))
	}
	return r
}

// exec interprets a differential plan against the pre-step state. It is
// safe to call from any worker: all non-dependency inputs (base relations,
// deltas, materialized results, the plan memo) are read-only during
// phase 1, and dependency results are read through published write-once
// cells.
func (sr *stepRun) exec(p *diff.DiffPlan) *storage.Relation {
	if sr.mt.Ex.Par.Chain {
		return sr.execC(p).Materialize(p.E.Schema, sr.mt.Ex.Par)
	}
	mt := sr.mt
	ex := mt.Ex
	e := p.E
	if p.Empty {
		return storage.NewRelation(e.Schema)
	}
	if p.Reused {
		return sr.tasks[diff.DiffKey{EquivID: e.ID, Update: p.Update}].result()
	}
	op := p.Op
	u := mt.En.U
	par := ex.Par
	switch op.Kind {
	case dag.OpScan:
		d := ex.DB.Delta(op.Table)
		if u.IsInsert(p.Update) {
			return projectToP(d.Plus, e.Schema, par)
		}
		return projectToP(d.Minus, e.Schema, par)
	case dag.OpSelect:
		return execSelect(sr.exec(p.DiffChildren[0]), op.Pred, e.Schema, par)
	case dag.OpProject:
		return projectToP(sr.exec(p.DiffChildren[0]), e.Schema, par)
	case dag.OpJoin:
		dc := sr.exec(p.DiffChildren[0])
		var full *storage.Relation
		if len(p.FullInputs) > 0 {
			full = ex.Run(p.FullInputs[0])
		} else {
			// Index nested loops: probe the stored inner side.
			full = ex.stored(otherJoinChild(p))
		}
		return execJoinSized(dc, full, op.Pred, e.Schema, par)
	case dag.OpAggregate:
		// A maintainable aggregate differential consumed by an ancestor:
		// aggregate the input delta (merge semantics are the ancestor's
		// concern; the benchmark workloads materialize aggregates only at
		// roots, where the Maintainer merges via AggTable instead).
		in := sr.exec(p.DiffChildren[0])
		return execAgg(in, op, e.Schema, par, 0)
	case dag.OpUnion:
		out := storage.NewRelation(e.Schema)
		for _, c := range p.DiffChildren {
			out.InsertAll(projectToP(sr.exec(c), e.Schema, par))
		}
		return out
	case dag.OpMinus:
		panic("exec: differential maintenance through multiset difference is not supported; " +
			"materialize and recompute such views instead")
	default:
		panic(fmt.Sprintf("exec: differential plan over %s unsupported", op.Kind))
	}
}

// execC mirrors exec arm-for-arm over batches: one differential task's plan
// tree runs as a single chained pipeline, gathering to rows only when the
// task publishes its result.
func (sr *stepRun) execC(p *diff.DiffPlan) *Batch {
	mt := sr.mt
	ex := mt.Ex
	e := p.E
	if p.Empty {
		return batchOf(storage.NewRelation(e.Schema))
	}
	if p.Reused {
		return batchOf(sr.tasks[diff.DiffKey{EquivID: e.ID, Update: p.Update}].result())
	}
	op := p.Op
	u := mt.En.U
	par := ex.Par
	switch op.Kind {
	case dag.OpScan:
		d := ex.DB.Delta(op.Table)
		if u.IsInsert(p.Update) {
			return batchOf(d.Plus).project(e.Schema, par)
		}
		return batchOf(d.Minus).project(e.Schema, par)
	case dag.OpSelect:
		return chainSelect(sr.execC(p.DiffChildren[0]), op.Pred, e.Schema, par)
	case dag.OpProject:
		return sr.execC(p.DiffChildren[0]).project(e.Schema, par)
	case dag.OpJoin:
		dc := sr.execC(p.DiffChildren[0])
		var full *Batch
		if len(p.FullInputs) > 0 {
			full = ex.RunC(p.FullInputs[0])
		} else {
			// Index nested loops: probe the stored inner side.
			full = batchOf(ex.stored(otherJoinChild(p)))
		}
		return chainJoin(dc, full, op.Pred, !(full.Len() < dc.Len()), e.Schema, par)
	case dag.OpAggregate:
		return chainAgg(sr.execC(p.DiffChildren[0]), op, e.Schema, par, 0)
	case dag.OpUnion:
		parts := make([]*Batch, len(p.DiffChildren))
		for i, c := range p.DiffChildren {
			parts[i] = sr.execC(c)
		}
		return chainConcat(parts, e.Schema, par)
	case dag.OpMinus:
		panic("exec: differential maintenance through multiset difference is not supported; " +
			"materialize and recompute such views instead")
	default:
		panic(fmt.Sprintf("exec: differential plan over %s unsupported", op.Kind))
	}
}

// otherJoinChild identifies the join input that is NOT the differential side.
func otherJoinChild(p *diff.DiffPlan) *dag.Equiv {
	depID := p.DiffChildren[0].E.ID
	for _, c := range p.Op.Children {
		if c.ID != depID {
			return c
		}
	}
	panic("exec: join differential with no full side")
}
