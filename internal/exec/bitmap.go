package exec

import "math/bits"

// Bitmap is the selection vector of the batch engine: one bit per input row,
// set when the row survives the predicate conjuncts applied so far. Filters
// fill it with tight typed loops over column vectors (batch.go) and compose
// further conjuncts by clearing set bits, then a single ordered pass gathers
// the surviving rows — reproducing the row engine's output order exactly,
// since bit order is row order.
//
// Bits at index >= Len() are never set; every operation keeps that invariant
// (Not masks the tail word), so Count and iteration need no bounds checks.
type Bitmap struct {
	n     int
	words []uint64
}

// NewBitmap returns an empty (all-zero) bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{n: n, words: make([]uint64, (n+63)>>6)}
}

// Len returns the row count the bitmap ranges over.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (b *Bitmap) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Get reports bit i.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// SetAll sets every bit in [0, Len()).
func (b *Bitmap) SetAll() {
	for w := range b.words {
		b.words[w] = ^uint64(0)
	}
	b.maskTail()
}

// ClearAll zeroes the bitmap.
func (b *Bitmap) ClearAll() {
	for w := range b.words {
		b.words[w] = 0
	}
}

// SetRange sets every bit in [lo, hi).
func (b *Bitmap) SetRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		b.Set(i)
	}
}

// ClearRange clears every bit in [lo, hi).
func (b *Bitmap) ClearRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		b.Clear(i)
	}
}

// maskTail zeroes the bits of the last word beyond Len().
func (b *Bitmap) maskTail() {
	if r := uint(b.n & 63); r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << r) - 1
	}
}

// And intersects with o (same length required).
func (b *Bitmap) And(o *Bitmap) {
	for w := range b.words {
		b.words[w] &= o.words[w]
	}
}

// AndNot removes o's set bits (same length required).
func (b *Bitmap) AndNot(o *Bitmap) {
	for w := range b.words {
		b.words[w] &^= o.words[w]
	}
}

// Or unions with o (same length required).
func (b *Bitmap) Or(o *Bitmap) {
	for w := range b.words {
		b.words[w] |= o.words[w]
	}
}

// Not complements the bitmap within [0, Len()).
func (b *Bitmap) Not() {
	for w := range b.words {
		b.words[w] = ^b.words[w]
	}
	b.maskTail()
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// CountRange returns the number of set bits in [lo, hi). lo must be a
// multiple of 64 or share its word with no set bit below lo (the batch
// engine always calls it with word-aligned lo).
func (b *Bitmap) CountRange(lo, hi int) int {
	n := 0
	for w := lo >> 6; w < (hi+63)>>6 && w < len(b.words); w++ {
		word := b.words[w]
		if base := w << 6; base+64 > hi {
			word &= (1 << uint(hi-base)) - 1
		}
		if base := w << 6; base < lo {
			word &^= (1 << uint(lo-base)) - 1
		}
		n += bits.OnesCount64(word)
	}
	return n
}

// ForEach calls fn for every set bit, in ascending order.
func (b *Bitmap) ForEach(fn func(i int)) { b.ForEachRange(0, b.n, fn) }

// ForEachRange calls fn for every set bit in [lo, hi), in ascending order.
func (b *Bitmap) ForEachRange(lo, hi int, fn func(i int)) {
	if hi > b.n {
		hi = b.n
	}
	for w := lo >> 6; w < (hi+63)>>6 && w < len(b.words); w++ {
		word := b.words[w]
		base := w << 6
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			i := base + tz
			word &= word - 1
			if i < lo {
				continue
			}
			if i >= hi {
				return
			}
			fn(i)
		}
	}
}

// FilterRange clears every set bit i in [lo, hi) for which pred(i) is false
// — selection-vector composition for non-leading predicate conjuncts.
func (b *Bitmap) FilterRange(lo, hi int, pred func(i int) bool) {
	if hi > b.n {
		hi = b.n
	}
	for w := lo >> 6; w < (hi+63)>>6 && w < len(b.words); w++ {
		word := b.words[w]
		base := w << 6
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			i := base + tz
			word &= word - 1
			if i < lo || i >= hi {
				continue
			}
			if !pred(i) {
				b.words[w] &^= 1 << uint(tz)
			}
		}
	}
}

// wordSpan returns the word-index range covering rows [lo, hi). The batch
// engine calls the *Words helpers below only with lo word-aligned and hi
// either word-aligned or equal to Len(), so a word never spans two callers.
func (b *Bitmap) wordSpan(lo, hi int) (wlo, whi int) {
	wlo, whi = lo>>6, (hi+63)>>6
	if whi > len(b.words) {
		whi = len(b.words)
	}
	return
}

// ZeroWords zeroes the words covering rows [lo, hi) (word-aligned contract —
// see wordSpan).
func (b *Bitmap) ZeroWords(lo, hi int) {
	wlo, whi := b.wordSpan(lo, hi)
	for w := wlo; w < whi; w++ {
		b.words[w] = 0
	}
}

// AndWords intersects with o over the words covering rows [lo, hi)
// (word-aligned contract — see wordSpan).
func (b *Bitmap) AndWords(o *Bitmap, lo, hi int) {
	wlo, whi := b.wordSpan(lo, hi)
	for w := wlo; w < whi; w++ {
		b.words[w] &= o.words[w]
	}
}

// CopyWords copies o's words covering rows [lo, hi) (word-aligned contract —
// see wordSpan).
func (b *Bitmap) CopyWords(o *Bitmap, lo, hi int) {
	wlo, whi := b.wordSpan(lo, hi)
	copy(b.words[wlo:whi], o.words[wlo:whi])
}

// Indices materializes the selection vector as ascending row indexes.
func (b *Bitmap) Indices() []int32 {
	out := make([]int32, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, int32(i)) })
	return out
}

// FromBools builds a bitmap from a bool slice (the naive model the property
// tests compare against).
func FromBools(m []bool) *Bitmap {
	b := NewBitmap(len(m))
	for i, v := range m {
		if v {
			b.Set(i)
		}
	}
	return b
}

// ToBools materializes the bitmap as a bool slice.
func (b *Bitmap) ToBools() []bool {
	out := make([]bool, b.n)
	b.ForEach(func(i int) { out[i] = true })
	return out
}
