package repro_test

// Integration tests of the public API surface, exercising the full pipeline
// exactly as a downstream user would: catalog → SQL views → optimize →
// runtime → refresh → verify.

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/catalog"
	"repro/internal/tpcd"
)

func publicCatalog() *repro.Catalog {
	cat := repro.NewCatalog()
	cat.AddTable(&catalog.Table{
		Name: "fact",
		Columns: []catalog.Column{
			{Name: "f_id", Type: catalog.Int, Width: 8},
			{Name: "f_dim", Type: catalog.Int, Width: 8},
			{Name: "f_val", Type: catalog.Float, Width: 8},
		},
		PrimaryKey: []string{"f_id"},
		Stats: catalog.TableStats{Rows: 50000, Columns: map[string]catalog.ColumnStats{
			"f_id":  {Distinct: 50000, Min: 1, Max: 50000},
			"f_dim": {Distinct: 100, Min: 1, Max: 100},
			"f_val": {Distinct: 1000, Min: 0, Max: 1000},
		}},
	})
	cat.AddTable(&catalog.Table{
		Name: "dim",
		Columns: []catalog.Column{
			{Name: "d_id", Type: catalog.Int, Width: 8},
			{Name: "d_grp", Type: catalog.Int, Width: 8},
		},
		PrimaryKey: []string{"d_id"},
		Stats: catalog.TableStats{Rows: 100, Columns: map[string]catalog.ColumnStats{
			"d_id":  {Distinct: 100, Min: 1, Max: 100},
			"d_grp": {Distinct: 10, Min: 1, Max: 10},
		}},
	})
	cat.AddIndex(repro.Index{Name: "pk_fact", Table: "fact", Columns: []string{"f_id"}, Unique: true})
	cat.AddIndex(repro.Index{Name: "pk_dim", Table: "dim", Columns: []string{"d_id"}, Unique: true})
	return cat
}

func TestPublicAPIOptimize(t *testing.T) {
	cat := publicCatalog()
	sys := repro.NewSystem(cat, repro.Options{})
	def, err := repro.ParseView(cat, `
		SELECT dim.d_grp, SUM(fact.f_val) AS total, COUNT(*)
		FROM fact, dim WHERE fact.f_dim = dim.d_id GROUP BY dim.d_grp`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddView("by_grp", def); err != nil {
		t.Fatal(err)
	}
	u := repro.UniformUpdates(cat, []string{"fact"}, 5)
	plan := sys.OptimizeGreedy(u, repro.DefaultGreedyConfig())
	if plan.TotalCost <= 0 {
		t.Fatalf("plan cost must be positive")
	}
	if !strings.Contains(plan.Report(), "by_grp") {
		t.Errorf("report should mention the view")
	}
}

func TestPublicAPICustomUpdateSpec(t *testing.T) {
	cat := publicCatalog()
	u := repro.NewUpdates([]string{"fact", "dim"})
	u.Ins["fact"] = 1000
	u.Del["fact"] = 200
	u.Ins["dim"] = 2
	if u.N() != 4 {
		t.Fatalf("N = %d", u.N())
	}
	sys := repro.NewSystem(cat, repro.Options{})
	def, _ := repro.ParseView(cat, `SELECT * FROM fact, dim WHERE fact.f_dim = dim.d_id`)
	if _, err := sys.AddView("flat", def); err != nil {
		t.Fatal(err)
	}
	plan := sys.OptimizeNoGreedy(u)
	if plan.TotalCost <= 0 {
		t.Fatalf("cost must be positive")
	}
}

func TestPublicAPIBufferParams(t *testing.T) {
	big := repro.DefaultCostParams()
	small := repro.SmallBufferParams()
	if small.BufferBlocks >= big.BufferBlocks {
		t.Errorf("small buffer should be smaller: %d vs %d", small.BufferBlocks, big.BufferBlocks)
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	const sf = 0.001
	cat := tpcd.NewCatalog(sf, true)
	db := tpcd.Generate(cat, sf, 99)
	sys := repro.NewSystem(cat, repro.Options{})
	def, err := repro.ParseView(cat, `
		SELECT customer.c_nationkey, SUM(orders.o_totalprice) AS rev, COUNT(*)
		FROM orders, customer
		WHERE orders.o_custkey = customer.c_custkey
		GROUP BY customer.c_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddView("rev", def); err != nil {
		t.Fatal(err)
	}
	u := repro.UniformUpdates(cat, []string{"orders"}, 10)
	plan := sys.OptimizeGreedy(u, repro.DefaultGreedyConfig())
	rt := plan.NewRuntime(db)
	tpcd.LogUniformUpdates(cat, db, []string{"orders"}, 10, 123)
	rt.Refresh()
	if err := rt.Verify(); err != nil {
		t.Fatalf("refresh diverged: %v", err)
	}
}
