// Warehouse: an end-to-end nightly-refresh simulation on generated TPC-D
// data. The optimizer plans maintenance for two views (a four-relation join
// and an aggregate over it), the runtime materializes them, update batches
// arrive, and each refresh is executed and verified against recomputation —
// the validation step the paper could not perform without an engine.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/tpcd"
)

func main() {
	const sf = 0.002 // small scale so the demo runs in moments
	cat := tpcd.NewCatalog(sf, true)
	db := tpcd.Generate(cat, sf, 2026)
	fmt.Printf("generated TPC-D at SF %g: %d lineitems, %d orders\n",
		sf, db.MustRelation("lineitem").Len(), db.MustRelation("orders").Len())

	sys := repro.NewSystem(cat, repro.Options{})
	if _, err := sys.AddView("recent_sales", tpcd.ViewJoin4(cat)); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.AddView("revenue_by_nation", tpcd.ViewAgg4(cat)); err != nil {
		log.Fatal(err)
	}

	updated := []string{"customer", "orders", "lineitem"}
	u := repro.UniformUpdates(cat, updated, 5)
	plan := sys.OptimizeGreedy(u, repro.DefaultGreedyConfig())
	fmt.Println("\noptimizer decisions:")
	fmt.Print(plan.Report())

	rt := plan.NewRuntime(db)
	fmt.Printf("\nmaterialized %d results; starting nightly cycles\n", len(plan.Eval.MS.Fulls.Full))

	for night := 1; night <= 3; night++ {
		tpcd.LogUniformUpdates(cat, db, updated, 5, int64(night))
		start := time.Now()
		rt.Refresh()
		elapsed := time.Since(start)
		if err := rt.Verify(); err != nil {
			log.Fatalf("night %d: %v", night, err)
		}
		fmt.Printf("night %d: refreshed in %v, views verified (%d join rows, %d agg groups)\n",
			night, elapsed.Round(time.Millisecond),
			rt.ViewRows(plan.Views[0].View).Len(),
			rt.ViewRows(plan.Views[1].View).Len())
	}
	fmt.Println("\nall refreshes matched full recomputation — incremental maintenance is exact")
}
