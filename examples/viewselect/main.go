// Viewselect: the paper's index-selection result (§7.2, Figure 5b). Starting
// from a catalog with NO indexes at all, the greedy optimizer chooses the
// indexes (and extra views) that make view maintenance cheap — and a space
// budget trades benefit for storage, ranking candidates by benefit per byte.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/tpcd"
)

func main() {
	cat := tpcd.NewCatalog(0.1, false) // no predefined indexes
	sys := repro.NewSystem(cat, repro.Options{})
	for _, v := range tpcd.ViewSet10(cat) {
		if _, err := sys.AddView(v.Name, v.Def); err != nil {
			log.Fatal(err)
		}
	}
	u := repro.UniformUpdates(cat, tpcd.UpdatedRelations(), 10)

	baseline := sys.OptimizeNoGreedy(u)
	fmt.Printf("baseline refresh cost without any indexes: %.2f s\n\n", baseline.TotalCost)

	unlimited := sys.OptimizeGreedy(u, repro.DefaultGreedyConfig())
	fmt.Println("--- unlimited space ---")
	fmt.Print(unlimited.Report())

	budget := repro.DefaultGreedyConfig()
	budget.SpaceBudget = 8 << 20 // 8 MB for all extras
	constrained := sys.OptimizeGreedy(u, budget)
	fmt.Println("\n--- 8 MB space budget (benefit per byte) ---")
	fmt.Print(constrained.Report())

	var bytes float64
	for _, c := range constrained.Greedy.Chosen {
		bytes += c.Bytes
	}
	fmt.Printf("\nbudgeted extras occupy %.1f MB; unlimited plan is %.2fx cheaper than baseline\n",
		bytes/(1<<20), baseline.TotalCost/unlimited.TotalCost)
}
