// Workload: tune a mixed workload of maintained views AND ad-hoc queries —
// the paper's closing extension ("our algorithms can also be used to choose
// extra temporary and permanent views in order to speed up a workload
// containing queries and updates"). A hot dashboard query runs 100× per
// refresh cycle; the optimizer weighs its speedup against the maintenance
// cost of whatever it materializes.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/tpcd"
)

func main() {
	cat := tpcd.NewCatalog(0.1, true)
	sys := core.NewSystem(cat, core.Options{})

	// One maintained view: recent sales detail.
	if _, err := sys.AddView("recent_sales", tpcd.ViewJoin4(cat)); err != nil {
		log.Fatal(err)
	}

	// A hot dashboard query sharing the view's backbone, run 100× per cycle.
	hot, err := repro.ParseView(cat, `
		SELECT customer.c_nationkey, SUM(lineitem.l_extendedprice) AS rev, COUNT(*)
		FROM lineitem, orders, customer
		WHERE lineitem.l_orderkey = orders.o_orderkey
		  AND orders.o_custkey = customer.c_custkey
		  AND orders.o_orderdate < 255
		GROUP BY customer.c_nationkey`)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.AddQuery("nation_dashboard", hot, 100); err != nil {
		log.Fatal(err)
	}
	// A rarer analyst query, 5× per cycle.
	rare, err := repro.ParseView(cat, `
		SELECT supplier.s_nationkey, COUNT(*)
		FROM lineitem, orders, supplier
		WHERE lineitem.l_orderkey = orders.o_orderkey
		  AND lineitem.l_suppkey = supplier.s_suppkey
		  AND orders.o_orderdate < 511
		GROUP BY supplier.s_nationkey`)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.AddQuery("supplier_report", rare, 5); err != nil {
		log.Fatal(err)
	}

	// Nightly updates: 2% inserts (1% deletes) everywhere.
	u := repro.UniformUpdates(cat, tpcd.UpdatedRelations(), 2)
	plan := sys.OptimizeWorkload(u, repro.DefaultGreedyConfig())

	fmt.Println("workload tuning result:")
	fmt.Print(plan.Report())
	fmt.Printf("\nworkload cost: %.2f s → %.2f s per cycle (%.2fx)\n",
		plan.Greedy.InitialCost, plan.Greedy.FinalCost,
		plan.Greedy.InitialCost/plan.Greedy.FinalCost)
	for _, qp := range plan.Queries {
		fmt.Printf("  %s now costs %.3f s per execution\n", qp.Query.Name, qp.Cost)
	}
}
