// Caching: the paper's §8 outlook — dynamic query-result caching — running
// on the same AND-OR DAG machinery. A stream of dashboard queries arrives;
// the cache manager admits and evicts results by decayed benefit per byte
// under a fixed space budget, and overlapping queries reuse each other's
// cached subexpressions.
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/cost"
	"repro/internal/tpcd"
	"repro/internal/viewdef"
)

func main() {
	cat := tpcd.NewCatalog(0.1, true)
	m := cache.New(cat, cost.Default(), 64<<20) // 64 MB cache

	queries := []struct{ name, sql string }{
		{"recent_orders", `
			SELECT * FROM orders, customer
			WHERE orders.o_custkey = customer.c_custkey AND orders.o_orderdate < 255`},
		{"rev_by_nation", `
			SELECT customer.c_nationkey, SUM(orders.o_totalprice) AS rev, COUNT(*)
			FROM orders, customer
			WHERE orders.o_custkey = customer.c_custkey AND orders.o_orderdate < 255
			GROUP BY customer.c_nationkey`},
		{"rev_by_segment", `
			SELECT customer.c_mktsegment, SUM(orders.o_totalprice) AS rev, COUNT(*)
			FROM orders, customer
			WHERE orders.o_custkey = customer.c_custkey AND orders.o_orderdate < 255
			GROUP BY customer.c_mktsegment`},
		{"parts_small", `
			SELECT part.p_type, COUNT(*) FROM part
			WHERE part.p_size < 10 GROUP BY part.p_type`},
	}

	// A realistic session: the revenue dashboards repeat; others are one-off.
	stream := []int{0, 1, 2, 1, 1, 3, 2, 1, 2, 1, 1, 2}
	for turn, qi := range stream {
		q := queries[qi]
		def, err := viewdef.Parse(cat, q.sql)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := m.Execute(q.name, def)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("turn %2d %-16s est cost %8.3f s\n", turn+1, q.name, plan.CumCost)
	}

	fmt.Println()
	fmt.Print(m.Report())
}
