// Serving: the full read/write loop. Materialized views are kept fresh by
// a refresh writer while concurrent readers ask SQL queries through
// Runtime.Query. Every answer comes from an immutable epoch snapshot — the
// state at one update-step boundary, never a torn mix — and hot query
// results are admitted into a benefit-based dynamic cache, whose hit rate
// is printed at the end.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/tpcd"
)

func main() {
	const sf = 0.001
	cat := tpcd.NewCatalog(sf, true)
	db := tpcd.Generate(cat, sf, 1)

	// Maintain the five aggregate dashboard views of the paper's Figure 4(b).
	sys := core.NewSystem(cat, core.Options{})
	for _, v := range tpcd.ViewSet5(cat, true) {
		if _, err := sys.AddView(v.Name, v.Def); err != nil {
			log.Fatal(err)
		}
	}
	updated := []string{"customer", "orders", "lineitem"}
	plan := sys.OptimizeGreedy(diff.UniformPercent(cat, updated, 5), greedy.DefaultConfig())
	rt := plan.NewRuntime(db)

	// Turn on serving BEFORE refreshing concurrently: from here on, refresh
	// publishes each update step as an immutable snapshot.
	rt.EnableServing(core.ServeOptions{CacheBudget: 32 << 20})

	queries := []string{
		// Identical to the rev_by_custnation view: answered from its
		// maintained rows.
		`SELECT customer.c_nationkey, SUM(lineitem.l_extendedprice) AS revenue, COUNT(*)
		 FROM lineitem, orders, customer
		 WHERE lineitem.l_orderkey = orders.o_orderkey
		   AND orders.o_custkey = customer.c_custkey AND orders.o_orderdate < 255
		 GROUP BY customer.c_nationkey`,
		// Shares the lineitem⋈orders backbone with every view.
		`SELECT * FROM lineitem, orders
		 WHERE lineitem.l_orderkey = orders.o_orderkey AND orders.o_orderdate < 255`,
		// Covered by nothing materialized: a candidate for the dynamic cache.
		`SELECT supplier.s_nationkey, COUNT(*) FROM supplier GROUP BY supplier.s_nationkey`,
	}

	// Readers hammer the query mix while the writer applies three nightly
	// update batches.
	var (
		wg   sync.WaitGroup
		done atomic.Bool
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				if _, err := rt.Query(queries[(i+w)%len(queries)]); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	for night := 1; night <= 3; night++ {
		tpcd.LogUniformUpdates(cat, db, updated, 5, int64(night))
		rt.Refresh()
	}
	done.Store(true)
	wg.Wait()

	if err := rt.Verify(); err != nil {
		log.Fatal(err)
	}
	st := rt.ServeStats()
	epoch := rt.Snapshots().Current().Epoch()
	fmt.Printf("served %d queries across %d snapshot epochs while refreshing 3 nights\n",
		st.Queries, epoch+1)
	fmt.Printf("result-cache hit rate: %.0f%% (%d hits, %d refills after refresh steps)\n",
		100*float64(st.CacheHits)/float64(st.Queries), st.CacheHits, st.Refills)
	fmt.Print(rt.CacheReport())
	fmt.Println("all views verified exact against recomputation")
}
