// Quickstart: define two materialized views that share a subexpression,
// describe a pending update batch, and let the optimizer find a combined
// maintenance plan — including which extra results to materialize.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/catalog"
)

func main() {
	// A small sales schema, built by hand.
	cat := repro.NewCatalog()
	cat.AddTable(&catalog.Table{
		Name: "sales",
		Columns: []catalog.Column{
			{Name: "s_id", Type: catalog.Int, Width: 8},
			{Name: "s_prod", Type: catalog.Int, Width: 8},
			{Name: "s_store", Type: catalog.Int, Width: 8},
			{Name: "s_amount", Type: catalog.Float, Width: 8},
		},
		PrimaryKey: []string{"s_id"},
		Stats: catalog.TableStats{Rows: 1_000_000, Columns: map[string]catalog.ColumnStats{
			"s_id":    {Distinct: 1_000_000, Min: 1, Max: 1_000_000},
			"s_prod":  {Distinct: 10_000, Min: 1, Max: 10_000},
			"s_store": {Distinct: 500, Min: 1, Max: 500},
		}},
	})
	cat.AddTable(&catalog.Table{
		Name: "product",
		Columns: []catalog.Column{
			{Name: "p_id", Type: catalog.Int, Width: 8},
			{Name: "p_cat", Type: catalog.Int, Width: 8},
		},
		PrimaryKey: []string{"p_id"},
		Stats: catalog.TableStats{Rows: 10_000, Columns: map[string]catalog.ColumnStats{
			"p_id":  {Distinct: 10_000, Min: 1, Max: 10_000},
			"p_cat": {Distinct: 40, Min: 1, Max: 40},
		}},
	})
	cat.AddTable(&catalog.Table{
		Name: "store",
		Columns: []catalog.Column{
			{Name: "st_id", Type: catalog.Int, Width: 8},
			{Name: "st_region", Type: catalog.Int, Width: 8},
		},
		PrimaryKey: []string{"st_id"},
		Stats: catalog.TableStats{Rows: 500, Columns: map[string]catalog.ColumnStats{
			"st_id":     {Distinct: 500, Min: 1, Max: 500},
			"st_region": {Distinct: 10, Min: 1, Max: 10},
		}},
	})
	for _, t := range []string{"sales", "product", "store"} {
		cat.AddIndex(catalog.Index{Name: "pk_" + t, Table: t,
			Columns: cat.MustTable(t).PrimaryKey, Unique: true})
	}

	sys := repro.NewSystem(cat, repro.Options{})

	// Two views over the shared sales⋈product join (the paper's Example 3.1
	// pattern): revenue by category, and revenue by region.
	for _, v := range []struct{ name, sql string }{
		{"rev_by_category", `
			SELECT product.p_cat, SUM(sales.s_amount) AS revenue, COUNT(*)
			FROM sales, product
			WHERE sales.s_prod = product.p_id
			GROUP BY product.p_cat`},
		{"rev_by_region", `
			SELECT store.st_region, SUM(sales.s_amount) AS revenue, COUNT(*)
			FROM sales, product, store
			WHERE sales.s_prod = product.p_id AND sales.s_store = store.st_id
			GROUP BY store.st_region`},
	} {
		def, err := repro.ParseView(cat, v.sql)
		if err != nil {
			log.Fatalf("parsing %s: %v", v.name, err)
		}
		if _, err := sys.AddView(v.name, def); err != nil {
			log.Fatalf("registering %s: %v", v.name, err)
		}
	}

	// Tonight's batch: 2% new sales (and 1% deletions of old ones).
	u := repro.UniformUpdates(cat, []string{"sales"}, 2)

	baseline := sys.OptimizeNoGreedy(u)
	fmt.Println("--- plain Volcano maintenance (NoGreedy) ---")
	fmt.Print(baseline.Report())

	plan := sys.OptimizeGreedy(u, repro.DefaultGreedyConfig())
	fmt.Println("\n--- with greedy materialized-view selection ---")
	fmt.Print(plan.Report())

	fmt.Printf("\nrefresh cost improvement: %.2fx\n", baseline.TotalCost/plan.TotalCost)
}
