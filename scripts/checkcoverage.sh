#!/usr/bin/env bash
# Coverage gate: run the full test suite once with statement coverage and
# fail if the total drops below the recorded baseline. The baseline ratchets
# up as the suite grows; keep it ~2 points under the measured total so
# incidental variation (timing-dependent paths in the concurrent tests) does
# not flake the gate. Update EXPERIMENTS.md's per-package table when you
# move it.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${COVERAGE_BASELINE:-78.5}"
PROFILE="$(mktemp)"
OUT="$(mktemp)"
trap 'rm -f "$PROFILE" "$OUT"' EXIT

# One suite run produces both the per-package percentages (its "ok" lines)
# and the merged profile the total is computed from. On failure, replay the
# captured output so CI logs name the failing test.
if ! go test -count=1 -coverprofile="$PROFILE" ./... >"$OUT" 2>&1; then
  cat "$OUT" >&2
  echo "FAIL: test suite failed during the coverage run" >&2
  exit 1
fi

echo "per-package statement coverage:"
awk '$1 == "ok" { cov = "-"; for (i = 1; i <= NF; i++) if ($i == "coverage:") cov = $(i+1); printf "  %-28s %s\n", $2, cov }' "$OUT"

TOTAL=$(go tool cover -func="$PROFILE" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
echo "total: ${TOTAL}% (baseline ${BASELINE}%)"
awk -v t="$TOTAL" -v b="$BASELINE" 'BEGIN { exit (t + 0 >= b + 0) ? 0 : 1 }' || {
  echo "FAIL: total coverage ${TOTAL}% fell below the ${BASELINE}% baseline" >&2
  exit 1
}
echo "coverage gate OK"
