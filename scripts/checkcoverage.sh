#!/usr/bin/env bash
# Coverage gate: run the full test suite once with statement coverage and
# fail if the total drops below the recorded baseline. Coverage is measured
# across package boundaries (-coverpkg=./...): the differential-oracle
# harness (exec/equivtest) and the bench workloads are how the operator
# engines and runtime paths are exercised, and their coverage counts. The
# baseline ratchets up as the suite grows; keep it ~2 points under the
# measured total so incidental variation (timing-dependent paths in the
# concurrent tests) does not flake the gate. Update EXPERIMENTS.md's
# per-package table when you move it.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${COVERAGE_BASELINE:-81.5}"
PROFILE="$(mktemp)"
OUT="$(mktemp)"
trap 'rm -f "$PROFILE" "$OUT"' EXIT

# One suite run produces the merged cross-package profile. On failure,
# replay the captured output so CI logs name the failing test.
if ! go test -count=1 -coverprofile="$PROFILE" -coverpkg=./... ./... >"$OUT" 2>&1; then
  cat "$OUT" >&2
  echo "FAIL: test suite failed during the coverage run" >&2
  exit 1
fi

# Per-package percentages from the merged profile: a block is covered if any
# test binary in the suite executed it (profiles of different test binaries
# repeat blocks, so dedupe by block id and OR the counts).
echo "per-package statement coverage (whole suite):"
awk 'NR > 1 {
  split($1, a, ":"); file = a[1]
  pkg = file; sub(/\/[^\/]*$/, "", pkg)
  key = $1
  if (!(key in stmts)) { stmts[key] = $2; pkgof[key] = pkg }
  if ($3 > 0) hit[key] = 1
} END {
  for (k in stmts) {
    tot[pkgof[k]] += stmts[k]
    if (k in hit) cov[pkgof[k]] += stmts[k]
  }
  for (p in tot) printf "  %-28s %.1f%%\n", p, 100 * cov[p] / tot[p]
}' "$PROFILE" | sort

TOTAL=$(go tool cover -func="$PROFILE" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
echo "total: ${TOTAL}% (baseline ${BASELINE}%)"
awk -v t="$TOTAL" -v b="$BASELINE" 'BEGIN { exit (t + 0 >= b + 0) ? 0 : 1 }' || {
  echo "FAIL: total coverage ${TOTAL}% fell below the ${BASELINE}% baseline" >&2
  exit 1
}
echo "coverage gate OK"
