#!/usr/bin/env bash
# Shard smoke: one real multi-process scatter-gather run. Builds mvshard and
# mvserve, boots a two-worker net/rpc fleet with durable stage logs, and
# serves the ten-view workload through it with the full check on — sampled
# answers verified against their epochs and final answers byte-identical to
# local execution (mvserve exits non-zero otherwise, and also if nothing
# actually scattered). Worker restart/rejoin mid-run is covered by
# TestShardKillDuringInstall; this script covers the process and wire
# boundary that the in-process tests cannot.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  kill "${PIDS[@]}" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK" ./cmd/mvshard ./cmd/mvserve

for i in 0 1; do
  "$WORK/mvshard" -shard "$i" -shards 2 -partitions 8 \
    -dir "$WORK/s$i" -addr "127.0.0.1:$((39170 + i))" &
  PIDS+=($!)
done
# Wait for both listeners rather than sleeping a fixed interval.
for i in 0 1; do
  for _ in $(seq 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$((39170 + i))") 2>/dev/null; then
      exec 3>&- 3<&-
      continue 2
    fi
    sleep 0.1
  done
  echo "FAIL: shard $i never started listening" >&2
  exit 1
done

"$WORK/mvserve" -shards 2 -partitions 8 \
  -shard-addrs 127.0.0.1:39170,127.0.0.1:39171 \
  -readers 4 -cycles 2 -check

# Every epoch install must have reached both stage logs before the gate
# flipped; an empty log would mean the fleet served nothing durable.
for i in 0 1; do
  [ -s "$WORK/s$i/stage.log" ] || {
    echo "FAIL: shard $i stage log is empty" >&2
    exit 1
  }
done

echo "shard smoke OK"
