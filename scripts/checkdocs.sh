#!/usr/bin/env bash
# checkdocs.sh — documentation gate, run by CI and usable locally.
#
#   1. gofmt: no Go file may need reformatting.
#   2. Required docs exist: README.md, ARCHITECTURE.md, docs/SQL.md.
#   3. Intra-repo markdown links resolve: every [text](target) in a
#      tracked *.md file (docs/ included) whose target is not an URL or
#      pure anchor must point at an existing file (anchors after '#' are
#      stripped). SNIPPETS.md is exempt: it quotes exemplar material from
#      external repositories verbatim, including their internal links.
#   4. Every examples/* program builds and runs to completion.
#   5. No compiled test binary (*.test) is tracked — they are build
#      artifacts and belong in .gitignore, not the tree.
set -u
cd "$(dirname "$0")/.."
fail=0

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    fail=1
fi

for doc in README.md ARCHITECTURE.md docs/SQL.md; do
    if [ ! -f "$doc" ]; then
        echo "missing required doc: $doc" >&2
        fail=1
    fi
done

while IFS=: read -r file target; do
    case "$target" in
        http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$(dirname "$file")/$path" ]; then
        echo "$file: broken link -> $target" >&2
        fail=1
    fi
done < <(git ls-files '*.md' | grep -v '^SNIPPETS\.md$' | while read -r f; do
    grep -o '\[[^]]*\]([^)]*)' "$f" 2>/dev/null \
        | sed -e 's/^\[[^]]*\](//' -e 's/)$//' \
        | while read -r t; do printf '%s:%s\n' "$f" "$t"; done
done)

tracked_bins=$(git ls-files '*.test')
if [ -n "$tracked_bins" ]; then
    echo "tracked test binaries (delete and gitignore):" >&2
    echo "$tracked_bins" >&2
    fail=1
fi

for ex in examples/*/; do
    ex="${ex%/}"
    if ! out=$(go run "./$ex" 2>&1); then
        echo "example $ex failed:" >&2
        echo "$out" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "checkdocs: FAILED" >&2
    exit 1
fi
echo "checkdocs: OK"
