#!/usr/bin/env bash
# Bench JSON: machine-readable perf trajectory. Builds mvserve, runs the
# feedback-driven costing experiment (skewed drifting workload, three runs:
# static plan, adaptive with static estimates, adaptive with observed
# cardinalities correcting every re-selection round) with the full check on,
# and emits the summary as BENCH_9.json — q-error quartet per run,
# improvement factor, adaptive-vs-static throughput, swap count, soundness
# flag. mvserve exits non-zero if any run fails verification or consistency,
# if no swap installs, or if the corrected run records no estimates, so CI
# can use this as a smoke gate. The output path defaults to BENCH_9.json in
# the repo root; pass a directory as $1 to write elsewhere.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-.}/BENCH_9.json"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK" ./cmd/mvserve

"$WORK/mvserve" -feedback -sf 0.002 -pct 8 -hot-frac 0.02 \
  -readers 4 -cycles 5 -seed 11 -check -json "$OUT"

# The emitted object must carry the keys the perf trajectory consumes.
for key in q_median_static_estimates q_median_feedback \
  q_p90_static_estimates q_p90_feedback q_error_improvement \
  adaptive_vs_static_qps swaps_installed verified_and_consistent; do
  grep -q "\"$key\"" "$OUT" || {
    echo "FAIL: $OUT missing key $key" >&2
    exit 1
  }
done

echo "bench json OK: $OUT"
