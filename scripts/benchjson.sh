#!/usr/bin/env bash
# Bench JSON: machine-readable perf trajectory. Builds mvserve and emits two
# summaries into the output directory (default: repo root; pass a directory
# as $1 to write elsewhere), each key-validated and each backed by a full
# correctness check, so CI can use this as a smoke gate:
#
#   BENCH_9.json  — the feedback-driven costing experiment (skewed drifting
#     workload, three runs: static plan, adaptive with static estimates,
#     adaptive with observed cardinalities correcting every re-selection
#     round): q-error quartet per run, improvement factor, adaptive-vs-static
#     throughput, swap count, soundness flag. mvserve exits non-zero if any
#     run fails verification or consistency, if no swap installs, or if the
#     corrected run records no estimates.
#   BENCH_10.json — the operator-engine comparison (chained end-to-end
#     columnar pipelines vs per-operator batch vs row) on the ten-view
#     refresh and serving workloads: refresh ms/cycle, MB allocated/cycle,
#     serving throughput per engine, chained-vs-batch factors. mvserve exits
#     non-zero if any engine fails verification, any sampled answer diverges
#     from step-boundary recomputation, or view rows differ across engines.
set -euo pipefail
cd "$(dirname "$0")/.."

OUTDIR="${1:-.}"
mkdir -p "$OUTDIR"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK" ./cmd/mvserve

OUT9="$OUTDIR/BENCH_9.json"
"$WORK/mvserve" -feedback -sf 0.002 -pct 8 -hot-frac 0.02 \
  -readers 4 -cycles 5 -seed 11 -check -json "$OUT9"

OUT10="$OUTDIR/BENCH_10.json"
"$WORK/mvserve" -pipeline -sf 0.002 -pct 8 \
  -readers 4 -cycles 5 -seed 11 -check -json "$OUT10"

# Each emitted object must carry the keys the perf trajectory consumes.
require_keys() {
  local file="$1"; shift
  for key in "$@"; do
    grep -q "\"$key\"" "$file" || {
      echo "FAIL: $file missing key $key" >&2
      exit 1
    }
  done
}

require_keys "$OUT9" q_median_static_estimates q_median_feedback \
  q_p90_static_estimates q_p90_feedback q_error_improvement \
  adaptive_vs_static_qps swaps_installed verified_and_consistent

require_keys "$OUT10" chained_refresh_ms_per_cycle batch_refresh_ms_per_cycle \
  row_refresh_ms_per_cycle chained_vs_batch_refresh chained_mb_per_cycle \
  batch_mb_per_cycle chained_vs_batch_bytes chained_qps batch_qps row_qps \
  verified_and_identical

echo "bench json OK: $OUT9 $OUT10"
