// Package repro is a from-scratch Go reproduction of "Materialized View
// Selection and Maintenance Using Multi-Query Optimization" (Mistry, Roy,
// Ramamritham, Sudarshan — SIGMOD 2001). It finds efficient plans for
// refreshing a set of materialized views by exploiting common subexpressions
// between view maintenance expressions in a Volcano-style AND-OR DAG, and
// greedily selects extra results — temporary, permanent, and indexes — to
// materialize.
//
// The root package is a facade over the internal packages:
//
//	catalog — schemas, statistics, indexes, foreign keys
//	algebra — multiset relational algebra (logical trees, predicates)
//	viewdef — a small SQL subset for defining views as text
//	dag     — the AND-OR DAG with expansion, unification, subsumption
//	volcano — best-plan search with materialized-result reuse
//	diff    — differential (view maintenance) plan costing
//	greedy  — the paper's greedy selection with its optimizations
//	exec    — an in-memory execution engine whose refresh driver schedules
//	          each update step's differentials concurrently as a task graph
//	storage — relations, deltas, hash indexes, epoch snapshots
//	cache   — benefit-based dynamic query-result caching (paper §8)
//	tpcd    — the TPC-D benchmark substrate of the paper's evaluation
//	bench   — regenerates every figure/table of the paper's §7, plus the
//	          parallel-refresh and concurrent-serving experiments
//
// Beyond optimization, a MaintenancePlan's Runtime executes refreshes and —
// after EnableServing — answers SQL queries concurrently with them under
// epoch-based snapshot isolation (Runtime.Query; see ARCHITECTURE.md).
//
// Quick start:
//
//	cat := tpcd.NewCatalog(0.1, true)
//	sys := repro.NewSystem(cat, repro.Options{})
//	def, _ := repro.ParseView(cat, `SELECT * FROM orders, customer
//	    WHERE orders.o_custkey = customer.c_custkey`)
//	sys.AddView("oc", def)
//	u := repro.UniformUpdates(cat, []string{"orders", "customer"}, 10)
//	plan := sys.OptimizeGreedy(u, repro.DefaultGreedyConfig())
//	fmt.Println(plan.Report())
package repro

import (
	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/storage"
	"repro/internal/viewdef"
)

// Re-exported types: the stable public surface.
type (
	// System is the view-maintenance optimizer for one catalog.
	System = core.System
	// Options configures a System.
	Options = core.Options
	// View is a registered materialized view.
	View = core.View
	// MaintenancePlan is the outcome of optimization.
	MaintenancePlan = core.MaintenancePlan
	// Runtime executes a plan against real data.
	Runtime = core.Runtime
	// RefreshMode is incremental vs recompute.
	RefreshMode = core.RefreshMode
	// ServeOptions configures Runtime.EnableServing.
	ServeOptions = core.ServeOptions
	// QueryResult is the answer to one served query.
	QueryResult = core.QueryResult
	// ServeStats counts serving activity.
	ServeStats = core.ServeStats

	// Catalog is database metadata.
	Catalog = catalog.Catalog
	// Table describes one base relation.
	Table = catalog.Table
	// Index describes an index.
	Index = catalog.Index

	// UpdateSpec describes a pending update batch.
	UpdateSpec = diff.UpdateSpec
	// GreedyConfig tunes candidate selection.
	GreedyConfig = greedy.Config
	// GreedyResult reports the chosen materializations.
	GreedyResult = greedy.Result

	// CostParams are the cost-model constants.
	CostParams = cost.Params

	// Node is a logical view definition tree.
	Node = algebra.Node
	// Database is the in-memory store used by Runtime.
	Database = storage.Database
)

// Refresh modes.
const (
	// Incremental merges differentials into the stored view.
	Incremental = core.Incremental
	// Recompute rebuilds the view from scratch.
	Recompute = core.Recompute
)

// NewSystem creates an optimizer over a catalog.
func NewSystem(cat *Catalog, opts Options) *System { return core.NewSystem(cat, opts) }

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return catalog.New() }

// ParseView parses a SQL view definition (see internal/viewdef for the
// supported subset).
func ParseView(cat *Catalog, sql string) (Node, error) { return viewdef.Parse(cat, sql) }

// UniformUpdates builds the paper's update model: inserts of pct% and
// deletes of pct/2 % on each listed relation, propagated in list order.
func UniformUpdates(cat *Catalog, rels []string, pct float64) *UpdateSpec {
	return diff.UniformPercent(cat, rels, pct)
}

// NewUpdates builds an empty update spec over the given propagation order;
// fill Ins and Del per relation.
func NewUpdates(rels []string) *UpdateSpec { return diff.NewUpdateSpec(rels) }

// DefaultGreedyConfig enables all candidate kinds (full results,
// differentials, indexes), unbounded.
func DefaultGreedyConfig() GreedyConfig { return greedy.DefaultConfig() }

// DefaultCostParams returns the baseline cost-model constants (4 KB blocks,
// 8000-block buffer).
func DefaultCostParams() CostParams { return cost.Default() }

// SmallBufferParams returns the 1000-block configuration of the paper's
// buffer-size experiment.
func SmallBufferParams() CostParams { return cost.SmallBuffer() }

// NewDatabase creates an empty in-memory database.
func NewDatabase() *Database { return storage.NewDatabase() }
